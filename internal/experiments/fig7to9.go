package experiments

import (
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// systemShape derives a production-scale QueryShape for one trace query:
// samples of 2–20 GB (the paper runs "a cached random sample of at most
// 20 GB"), row widths and fan-outs from the trace metadata.
func systemShape(cfg Config, spec workload.QuerySpec, consolidated, pushed bool) cluster.QueryShape {
	src := cfg.stream("shape/"+spec.Trace.String(), spec.ID)
	sampleMB := 2000 + 18000*src.Float64()
	rows := int64(sampleMB * 1e6 / float64(spec.BytesPerRow))
	k := 100
	if spec.ClosedFormOK() {
		k = 0
	}
	diagSizes := []int{
		int(50e6 / float64(spec.BytesPerRow)),
		int(100e6 / float64(spec.BytesPerRow)),
		int(200e6 / float64(spec.BytesPerRow)),
	}
	return cluster.QueryShape{
		SampleMB:     sampleMB,
		SampleRows:   rows,
		Selectivity:  0.05 + 0.95*src.Float64(),
		BootstrapK:   k,
		DiagSizes:    diagSizes,
		DiagP:        cfg.DiagP,
		ClosedForm:   spec.ClosedFormOK(),
		Consolidated: consolidated,
		Pushdown:     pushed,
		Fanout:       spec.GroupFanout,
	}
}

// qsets returns the Conviva QSet-1 and QSet-2 used by the §7 experiments.
func qsets(cfg Config) (qset1, qset2 []workload.QuerySpec) {
	// The systems experiments never touch the populations, so generate
	// tiny ones.
	return workload.GenerateQSets(workload.Conviva, cfg.QueriesPerSet, 64, cfg.Seed)
}

// PipelineResult holds per-query latency breakdowns for both query sets
// (Figs. 7 and 9).
type PipelineResult struct {
	Label        string
	QSet1, QSet2 []cluster.Breakdown // sorted by total latency
}

// Fig7 reproduces Fig. 7: per-query end-to-end response time of the naive
// §5.2 pipeline (UNION ALL rewrite, per-subquery scans) on the default
// cluster. Expected shape: tens of seconds for QSet-1, minutes for
// QSet-2, diagnostics dominating.
func Fig7(cfg Config) *PipelineResult {
	cl := mustCluster(cluster.Default())
	return runPipelines(cfg, cl, false, false, "Fig. 7 — naive pipeline")
}

// Fig9 reproduces Fig. 9: the fully optimized pipeline (scan
// consolidation + pushdown + tuned physical plan). Expected shape: a few
// seconds per query for both sets.
func Fig9(cfg Config) *PipelineResult {
	cl := mustCluster(tunedCluster())
	return runPipelines(cfg, cl, true, true, "Fig. 9 — optimized pipeline")
}

func mustCluster(cfg cluster.Config) *cluster.Cluster {
	cl, err := cluster.New(cfg)
	if err != nil {
		panic(err)
	}
	return cl
}

func runPipelines(cfg Config, cl *cluster.Cluster, consolidated, pushed bool, label string) *PipelineResult {
	q1, q2 := qsets(cfg)
	res := &PipelineResult{Label: label}
	for i, spec := range q1 {
		src := cfg.stream("pipeline1", i)
		res.QSet1 = append(res.QSet1,
			cl.SimulateBreakdown(src, systemShape(cfg, spec, consolidated, pushed)))
	}
	for i, spec := range q2 {
		src := cfg.stream("pipeline2", i)
		res.QSet2 = append(res.QSet2,
			cl.SimulateBreakdown(src, systemShape(cfg, spec, consolidated, pushed)))
	}
	sortByTotal(res.QSet1)
	sortByTotal(res.QSet2)
	return res
}

func sortByTotal(bs []cluster.Breakdown) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Total() < bs[j].Total() })
}

// MaxTotal returns the slowest query's latency in the set.
func MaxTotal(bs []cluster.Breakdown) float64 {
	m := 0.0
	for _, b := range bs {
		if b.Total() > m {
			m = b.Total()
		}
	}
	return m
}

// MedianTotal returns the median end-to-end latency of the set.
func MedianTotal(bs []cluster.Breakdown) float64 {
	if len(bs) == 0 {
		return 0
	}
	totals := make([]float64, len(bs))
	for i, b := range bs {
		totals[i] = b.Total()
	}
	sort.Float64s(totals)
	return totals[len(totals)/2]
}

// Render writes per-query stacked-bar rows.
func (r *PipelineResult) Render(w io.Writer) {
	fprintf(w, "%s — per-query latency (s), sorted\n", r.Label)
	for name, set := range map[string][]cluster.Breakdown{"QSet-1": r.QSet1, "QSet-2": r.QSet2} {
		fprintf(w, "%s: median %.2fs, max %.2fs\n", name, MedianTotal(set), MaxTotal(set))
		fprintf(w, "  %-6s %-12s %-12s %-12s %-10s\n", "query", "exec", "error-est", "diagnostics", "total")
		for i, b := range set {
			if len(set) > 12 && i%(len(set)/12+1) != 0 {
				continue // subsample rows for readability
			}
			fprintf(w, "  q%-5d %-12.3f %-12.3f %-12.3f %-10.3f\n",
				i, b.QuerySec, b.ErrorSec, b.DiagSec, b.Total())
		}
	}
}

// SpeedupResult holds per-query speedup distributions for error
// estimation and diagnostics on both query sets (Figs. 8(a)/(b) and
// 8(e)/(f)).
type SpeedupResult struct {
	Label string
	// ErrQ1/DiagQ1/ErrQ2/DiagQ2 are raw per-query speedup factors.
	ErrQ1, DiagQ1, ErrQ2, DiagQ2 []float64
	// TotalQ1/TotalQ2 are end-to-end per-query speedup factors.
	TotalQ1, TotalQ2 []float64
}

// Fig8ab reproduces Figs. 8(a) and 8(b): the CDF of per-query speedups
// delivered by the query-plan optimizations (scan consolidation +
// operator pushdown) relative to the naive baseline, on the same default
// cluster. Paper shape: QSet-1 error estimation 1–2x and diagnostics
// 5–20x; QSet-2 error estimation 20–60x and diagnostics 20–100x.
func Fig8ab(cfg Config) *SpeedupResult {
	cl := mustCluster(cluster.Default())
	q1, q2 := qsets(cfg)
	res := &SpeedupResult{Label: "Fig. 8(a)/(b) — query plan optimization speedups"}
	fill := func(set []workload.QuerySpec, stream string, errOut, diagOut, totalOut *[]float64) {
		for i, spec := range set {
			src := cfg.stream(stream, i)
			naive := cl.SimulateBreakdown(src, systemShape(cfg, spec, false, false))
			opt := cl.SimulateBreakdown(src, systemShape(cfg, spec, true, true))
			*errOut = append(*errOut, ratio(naive.ErrorSec, opt.ErrorSec))
			*diagOut = append(*diagOut, ratio(naive.DiagSec, opt.DiagSec))
			*totalOut = append(*totalOut, ratio(naive.Total(), opt.Total()))
		}
	}
	fill(q1, "fig8ab-1", &res.ErrQ1, &res.DiagQ1, &res.TotalQ1)
	fill(q2, "fig8ab-2", &res.ErrQ2, &res.DiagQ2, &res.TotalQ2)
	return res
}

// Fig8ef reproduces Figs. 8(e) and 8(f): speedups from tuning the physical
// plan (bounded parallelism, 35% input cache, straggler mitigation)
// relative to the plan-optimized but untuned configuration.
func Fig8ef(cfg Config) *SpeedupResult {
	untuned := mustCluster(untunedCluster())
	tuned := mustCluster(tunedCluster())
	q1, q2 := qsets(cfg)
	res := &SpeedupResult{Label: "Fig. 8(e)/(f) — physical plan tuning speedups"}
	fill := func(set []workload.QuerySpec, stream string, errOut, diagOut, totalOut *[]float64) {
		for i, spec := range set {
			src1 := cfg.stream(stream, i)
			src2 := cfg.stream(stream+"/tuned", i)
			shape := systemShape(cfg, spec, true, true)
			before := untuned.SimulateBreakdown(src1, shape)
			after := tuned.SimulateBreakdown(src2, shape)
			*errOut = append(*errOut, ratio(before.ErrorSec, after.ErrorSec))
			*diagOut = append(*diagOut, ratio(before.DiagSec, after.DiagSec))
			*totalOut = append(*totalOut, ratio(before.Total(), after.Total()))
		}
	}
	fill(q1, "fig8ef-1", &res.ErrQ1, &res.DiagQ1, &res.TotalQ1)
	fill(q2, "fig8ef-2", &res.ErrQ2, &res.DiagQ2, &res.TotalQ2)
	return res
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return a / 1e-9
	}
	return a / b
}

// Median returns the median of xs (0 when empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Render writes speedup CDFs as quantile tables.
func (r *SpeedupResult) Render(w io.Writer) {
	fprintf(w, "%s\n", r.Label)
	rows := []struct {
		name string
		xs   []float64
	}{
		{"QSet-1 error estimation", r.ErrQ1},
		{"QSet-1 diagnostics", r.DiagQ1},
		{"QSet-1 end-to-end", r.TotalQ1},
		{"QSet-2 error estimation", r.ErrQ2},
		{"QSet-2 diagnostics", r.DiagQ2},
		{"QSet-2 end-to-end", r.TotalQ2},
	}
	fprintf(w, "%-26s %-10s %-10s %-10s\n", "component", "p10", "median", "p90")
	for _, row := range rows {
		cdf := cdfPoints(row.xs, 10)
		if len(cdf) == 0 {
			continue
		}
		fprintf(w, "%-26s %-10.1f %-10.1f %-10.1f\n",
			row.name, cdf[0][0], Median(row.xs), cdf[8][0])
	}
}

// SweepResult is a 1-D parameter sweep (Figs. 8(c) and 8(d)).
type SweepResult struct {
	Label string
	X     []float64
	Times []SizeStat // simulated total latency at each x
}

// OptimumX returns the x with the lowest mean latency.
func (r *SweepResult) OptimumX() float64 {
	best := 0
	for i := range r.Times {
		if r.Times[i].Mean < r.Times[best].Mean {
			best = i
		}
	}
	return r.X[best]
}

// Fig8c reproduces Fig. 8(c): end-to-end latency versus the number of
// machines, averaged over both query sets, with .01/.99 quantile bars.
// Expected shape: U-shaped with an interior optimum (paper: ~20 machines).
func Fig8c(cfg Config) *SweepResult {
	machines := []float64{5, 10, 20, 40, 60, 80, 100}
	res := &SweepResult{Label: "Fig. 8(c) — latency vs degree of parallelism", X: machines}
	q1, q2 := qsets(cfg)
	all := append(append([]workload.QuerySpec{}, q1...), q2...)
	for _, m := range machines {
		ccfg := tunedCluster()
		ccfg.Machines = int(m)
		cl := mustCluster(ccfg)
		var totals []float64
		for i, spec := range all {
			src := cfg.stream("fig8c", i)
			totals = append(totals,
				cl.SimulateBreakdown(src, systemShape(cfg, spec, true, true)).Total())
		}
		res.Times = append(res.Times, summarize(totals))
	}
	return res
}

// Fig8d reproduces Fig. 8(d): end-to-end latency versus the fraction of
// samples cached. Expected shape: U-shaped with the optimum in the
// interior (paper: 30–40%).
func Fig8d(cfg Config) *SweepResult {
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	res := &SweepResult{Label: "Fig. 8(d) — latency vs fraction of samples cached", X: fractions}
	q1, q2 := qsets(cfg)
	all := append(append([]workload.QuerySpec{}, q1...), q2...)
	for _, f := range fractions {
		ccfg := tunedCluster()
		ccfg.CacheFraction = f
		cl := mustCluster(ccfg)
		var totals []float64
		for i, spec := range all {
			src := cfg.stream("fig8d", i)
			totals = append(totals,
				cl.SimulateBreakdown(src, systemShape(cfg, spec, true, true)).Total())
		}
		res.Times = append(res.Times, summarize(totals))
	}
	return res
}

// Render writes the sweep as a table.
func (r *SweepResult) Render(w io.Writer) {
	fprintf(w, "%s\n", r.Label)
	fprintf(w, "%-10s %-12s %-12s %-12s\n", "x", "mean (s)", "q01 (s)", "q99 (s)")
	for i, x := range r.X {
		s := r.Times[i]
		fprintf(w, "%-10.3g %-12.3f %-12.3f %-12.3f\n", x, s.Mean, s.Q01, s.Q99)
	}
	fprintf(w, "optimum at x = %g\n", r.OptimumX())
}
