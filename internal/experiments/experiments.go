// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic traces and the cluster cost model. Each
// Fig* function is deterministic under its Config seed, returns a
// structured result, and renders the same rows/series the paper reports;
// cmd/aqpbench and the repository-level benchmarks are thin wrappers
// around this package.
//
// Per DESIGN.md, the reproduction targets are shapes — orderings, rough
// ratios and crossover locations — not the absolute numbers measured on
// the authors' proprietary traces and EC2 testbed.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/rng"
)

// Config scales the experiments. Quick() keeps unit tests and benchmarks
// fast; Full() approaches the paper's settings and is what cmd/aqpbench
// uses by default.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// QueriesPerSet is the number of queries per workload (paper: 100 for
	// closed-form sets, 250 for bootstrap diagnostic sets, 100 per QSet).
	QueriesPerSet int
	// PopulationSize is |D| per synthetic query.
	PopulationSize int
	// SampleSize is the evaluation sample size n (paper: 1,000,000).
	SampleSize int
	// Trials is the number of evaluation samples per query (paper: 100).
	Trials int
	// TruthP is the number of fresh samples used to locate the true
	// confidence interval; it controls the evaluation's own noise floor.
	TruthP int
	// BootstrapK is the resample count (paper: 100).
	BootstrapK int
	// DiagP is the diagnostic subsample count per size (paper: 100).
	DiagP int
	// Workers is local execution parallelism.
	Workers int
}

// Quick returns a configuration small enough for CI: shapes remain, noise
// grows.
func Quick() Config {
	return Config{
		Seed:           2014,
		QueriesPerSet:  12,
		PopulationSize: 60000,
		SampleSize:     6000,
		Trials:         50,
		TruthP:         400,
		BootstrapK:     100,
		DiagP:          50,
		Workers:        4,
	}
}

// Full returns the paper-faithful configuration (minutes of CPU).
func Full() Config {
	return Config{
		Seed:           2014,
		QueriesPerSet:  100,
		PopulationSize: 400000,
		SampleSize:     20000,
		Trials:         100,
		TruthP:         500,
		BootstrapK:     100,
		DiagP:          100,
		Workers:        8,
	}
}

// truthP returns the truth-sample count, defaulting to Trials when unset.
func (c Config) truthP() int {
	if c.TruthP > 0 {
		return c.TruthP
	}
	return c.Trials
}

func (c Config) stream(name string, i int) *rng.Source {
	h := uint64(14695981039346656037)
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return rng.NewWithStream(c.Seed, h^uint64(i))
}

// SizeStat is a mean with .01/.99 quantile bars, the summary Fig. 1 and
// Fig. 8(c)/(d) plot per point.
type SizeStat struct {
	Mean float64
	Q01  float64
	Q99  float64
}

func summarize(xs []float64) SizeStat {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mean := 0.0
	for _, x := range sorted {
		mean += x
	}
	if len(sorted) > 0 {
		mean /= float64(len(sorted))
	}
	return SizeStat{
		Mean: mean,
		Q01:  quantileSorted(sorted, 0.01),
		Q99:  quantileSorted(sorted, 0.99),
	}
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// cdfPoints renders a CDF over values as (value, fraction<=value) pairs at
// the given resolution.
func cdfPoints(values []float64, points int) [][2]float64 {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([][2]float64, 0, points)
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(frac*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, [2]float64{sorted[idx], frac})
	}
	return out
}

// tunedCluster is the physically tuned configuration of §6/§7.3: bounded
// parallelism, ~35% input cache, straggler mitigation on.
func tunedCluster() cluster.Config {
	cfg := cluster.Default()
	cfg.Machines = 20
	cfg.CacheFraction = 0.35
	cfg.Mitigation = true
	return cfg
}

// untunedCluster uses all 100 machines, a minimal input cache and no
// straggler mitigation — the plan-optimized-but-untuned baseline that
// Fig. 8(e)/(f) speedups are measured against.
func untunedCluster() cluster.Config {
	cfg := cluster.Default()
	cfg.Machines = 100
	cfg.CacheFraction = 0.05
	cfg.Mitigation = false
	return cfg
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
