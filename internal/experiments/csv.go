package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/cluster"
)

// WriteCSV emits the Fig. 1 series as plot-ready CSV: one row per
// (technique, relative error) point with mean and quantile bars.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"technique", "rel_err", "mean_rows", "q01_rows", "q99_rows"}); err != nil {
		return err
	}
	for _, tech := range Fig1Techniques {
		for i, e := range r.RelErrs {
			s := r.Sizes[tech][i]
			if err := cw.Write([]string{
				tech, ftoa(e), ftoa(s.Mean), ftoa(s.Q01), ftoa(s.Q99),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Fig. 3 bars as CSV.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "technique", "not_applicable",
		"optimistic", "correct", "pessimistic"}); err != nil {
		return err
	}
	for _, trace := range r.Traces {
		for _, tech := range r.Techniques {
			s := r.Bars[trace][tech]
			if err := cw.Write([]string{trace, tech,
				ftoa(s.NotApplicable), ftoa(s.Optimistic),
				ftoa(s.Correct), ftoa(s.Pessimistic)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Fig. 4 bars as CSV.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"estimator", "trace", "accurate_approx",
		"correct_rejection", "false_positives", "false_negatives"}); err != nil {
		return err
	}
	for _, trace := range []string{"conviva", "facebook"} {
		b := r.Bars[trace]
		if err := cw.Write([]string{r.Estimator, trace,
			ftoa(b.AccurateApprox), ftoa(b.CorrectRejection),
			ftoa(b.FalsePositives), ftoa(b.FalseNegatives)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits per-query latency breakdowns (Figs. 7 and 9) as CSV.
func (r *PipelineResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"qset", "query", "exec_sec", "error_sec",
		"diag_sec", "total_sec"}); err != nil {
		return err
	}
	emit := func(name string, set []cluster.Breakdown) error {
		for i, b := range set {
			if err := cw.Write([]string{name, strconv.Itoa(i),
				ftoa(b.QuerySec), ftoa(b.ErrorSec), ftoa(b.DiagSec),
				ftoa(b.Total())}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("qset1", r.QSet1); err != nil {
		return err
	}
	if err := emit("qset2", r.QSet2); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits per-query speedup factors (Figs. 8(a)/(b)/(e)/(f)).
func (r *SpeedupResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"qset", "component", "query", "speedup"}); err != nil {
		return err
	}
	emit := func(qset, comp string, xs []float64) error {
		for i, x := range xs {
			if err := cw.Write([]string{qset, comp, strconv.Itoa(i), ftoa(x)}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, g := range []struct {
		qset, comp string
		xs         []float64
	}{
		{"qset1", "error", r.ErrQ1}, {"qset1", "diag", r.DiagQ1},
		{"qset1", "total", r.TotalQ1},
		{"qset2", "error", r.ErrQ2}, {"qset2", "diag", r.DiagQ2},
		{"qset2", "total", r.TotalQ2},
	} {
		if err := emit(g.qset, g.comp, g.xs); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits a parameter sweep (Figs. 8(c)/(d)).
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "mean_sec", "q01_sec", "q99_sec"}); err != nil {
		return err
	}
	for i, x := range r.X {
		s := r.Times[i]
		if err := cw.Write([]string{ftoa(x), ftoa(s.Mean), ftoa(s.Q01), ftoa(s.Q99)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the diagnostic ablation sweep.
func (r *DiagAblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"p", "accuracy", "false_positives",
		"subsample_queries"}); err != nil {
		return err
	}
	for i, p := range r.Ps {
		if err := cw.Write([]string{strconv.Itoa(p), ftoa(r.Accuracy[i]),
			ftoa(r.FalsePositives[i]), ftoa(r.SubsampleQueries[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
