package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/table"
)

// stageQueries are the representative pipeline shapes the stage breakdown
// covers: a closed-form aggregate (no resamples), a filtered scaled sum, a
// bootstrap-only percentile, a GROUP BY fan-out, and a MAX whose diagnostic
// rejects and triggers the exact fallback.
var stageQueries = []string{
	"SELECT AVG(X) FROM T",
	"SELECT SUM(X) FROM T WHERE G = 'a'",
	"SELECT PERCENTILE(X, 0.95) FROM T",
	"SELECT AVG(X) FROM T GROUP BY G",
	"SELECT MAX(X) FROM T",
}

// StageQuery is one query's recorded trace.
type StageQuery struct {
	SQL      string             `json:"sql"`
	TotalMs  float64            `json:"total_ms"`
	FellBack bool               `json:"fell_back"`
	Spans    []obs.SpanSnapshot `json:"spans"`
}

// StagesResult is the per-stage latency breakdown of representative queries
// run through the fully traced engine (the local analogue of the paper's
// Figs. 7–9 stacked bars, measured rather than simulated).
type StagesResult struct {
	Queries []StageQuery `json:"queries"`
}

// Stages runs the representative queries through a traced engine and
// returns their span trees. The trace structure (stages, nesting, counter
// attributes) is deterministic under cfg.Seed; only durations vary.
func Stages(cfg Config) *StagesResult {
	src := cfg.stream("stages-data", 0)
	n := cfg.PopulationSize
	xs := make(table.Float64Col, n)
	gs := make(table.StringCol, n)
	names := []string{"a", "b", "c", "d"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < n; i++ {
		gs[i] = names[zipf.Next()]
		// Well-behaved skew: closed-form and percentile diagnostics accept,
		// while MAX (an extreme, not estimable from a sample) still rejects
		// and exercises the fallback stage.
		xs[i] = src.LogNormal(4, 0.6)
	}
	tbl := table.MustNew(table.Schema{
		{Name: "X", Type: table.Float64},
		{Name: "G", Type: table.String},
	}, xs, gs)

	cl, err := cluster.New(cluster.Default())
	if err != nil {
		panic(err) // Default() always validates
	}
	tracer := obs.NewTracer(obs.Options{})
	e := core.New(core.Config{
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		BootstrapK: cfg.BootstrapK,
		Cluster:    cl,
		Obs:        tracer,
	})
	if err := e.RegisterTable("T", tbl); err != nil {
		panic(err)
	}
	// The diagnostic ladder needs b3 = n/(2·DiagP) ≥ 32 rows and only
	// produces meaningful verdicts well above that floor; quick configs
	// sit under it, so the stage breakdown floors the sample to keep the
	// diagnostic (and the MAX query's fallback) in the trace.
	sampleRows := cfg.SampleSize
	if sampleRows < 24000 {
		sampleRows = 24000
	}
	if sampleRows > n/2 {
		sampleRows = n / 2
	}
	if err := e.BuildSamples("T", sampleRows); err != nil {
		panic(err)
	}

	queries := stageQueries
	if cfg.QueriesPerSet > 0 && cfg.QueriesPerSet < len(queries) {
		queries = queries[:cfg.QueriesPerSet]
	}
	res := &StagesResult{}
	for _, q := range queries {
		ans, err := e.Query(q)
		if err != nil {
			panic(fmt.Sprintf("stages: %v", err))
		}
		tr, ok := tracer.Last()
		if !ok {
			panic("stages: query left no trace")
		}
		res.Queries = append(res.Queries, StageQuery{
			SQL:      q,
			TotalMs:  tr.TotalMs,
			FellBack: ans.FellBack(),
			Spans:    tr.Spans,
		})
	}
	return res
}

// Render implements the aqpbench result interface.
func (r *StagesResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Per-stage latency breakdown (traced pipeline)")
	fmt.Fprintln(w, "=============================================")
	for _, q := range r.Queries {
		note := ""
		if q.FellBack {
			note = "  [fell back to exact]"
		}
		fmt.Fprintf(w, "\n%s%s\n", q.SQL, note)
		for _, s := range q.Spans {
			renderSpan(w, s, 1)
		}
		fmt.Fprintf(w, "  %-18s %9.3fms\n", "total", q.TotalMs)
	}
}

func renderSpan(w io.Writer, s obs.SpanSnapshot, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%-18s %9.3fms\n", s.Stage, s.Ms)
	for _, c := range s.Children {
		renderSpan(w, c, depth+1)
	}
}

// WriteCSV emits one row per top-level stage.
func (r *StagesResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "sql,stage,ms"); err != nil {
		return err
	}
	for _, q := range r.Queries {
		for _, s := range q.Spans {
			if _, err := fmt.Fprintf(w, "%q,%s,%.3f\n", q.SQL, s.Stage, s.Ms); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%q,total,%.3f\n", q.SQL, q.TotalMs); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable trace export.
func (r *StagesResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// JSONName routes aqpbench's JSON export to a stages-specific file.
func (r *StagesResult) JSONName() string { return "BENCH_stages.json" }
