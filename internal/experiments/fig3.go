package experiments

import (
	"io"
	"sync"

	"repro/internal/estimator"
	"repro/internal/workload"
)

// TechSummary is one bar of Fig. 3: how a technique behaved across a
// trace, as fractions of all queries.
type TechSummary struct {
	NotApplicable float64
	Optimistic    float64
	Correct       float64
	Pessimistic   float64
}

// S3Stats reproduces the §3 headline numbers.
type S3Stats struct {
	// BootstrapTooWide / BootstrapTooNarrow are the fractions of Facebook
	// queries where the bootstrap's error bars were far too wide
	// (pessimistic; paper: 23.94%) or too narrow (optimistic; paper:
	// 12.2%).
	BootstrapTooWide   float64
	BootstrapTooNarrow float64
	// CLTApplicable is the fraction of Facebook queries amenable to
	// closed forms (paper: 56.78% including COUNT/SUM/AVG/VARIANCE).
	CLTApplicable float64
	// BootstrapFailMinMax is the bootstrap failure rate on MIN/MAX
	// queries (paper: 86.17%).
	BootstrapFailMinMax float64
	// BootstrapFailUDF is the bootstrap failure rate on UDF queries
	// (paper: 23.19%).
	BootstrapFailUDF float64
}

// Fig3Result holds per-trace, per-technique accuracy summaries (the four
// stacked bars of Fig. 3) and the §3 text statistics.
type Fig3Result struct {
	Traces     []string
	Techniques []string
	Bars       map[string]map[string]TechSummary // trace → technique → summary
	S3         S3Stats
}

// Fig3 reproduces Fig. 3 (and the §3 text statistics): evaluate bootstrap
// and closed-form error estimation on synthetic Facebook and Conviva
// traces using the δ-based protocol, and classify each (query, technique)
// as not-applicable / optimistic / correct / pessimistic.
func Fig3(cfg Config) *Fig3Result {
	res := &Fig3Result{
		Traces:     []string{"facebook", "conviva"},
		Techniques: []string{"bootstrap", "closed-form"},
		Bars:       map[string]map[string]TechSummary{},
	}
	type verdictRec struct {
		spec workload.QuerySpec
		tech string
		v    estimator.Verdict
	}
	var all []verdictRec

	for _, kind := range []workload.Kind{workload.Facebook, workload.Conviva} {
		trace := workload.Generate(workload.TraceConfig{
			Kind:                kind,
			NumQueries:          cfg.QueriesPerSet,
			PopulationSize:      cfg.PopulationSize,
			Seed:                cfg.Seed,
			AdversarialFraction: -1,
		})
		evalCfg := estimator.EvalConfig{
			SampleSize: cfg.SampleSize,
			Trials:     cfg.Trials,
			TruthP:     cfg.truthP(),
			Alpha:      0.95,
			DeltaTol:   0.2,
			FailFrac:   0.05,
		}
		recs := evaluateTrace(cfg, trace, evalCfg)
		all = append(all, func() []verdictRec {
			var out []verdictRec
			for _, r := range recs {
				out = append(out, verdictRec{spec: r.spec, tech: r.tech, v: r.v})
			}
			return out
		}()...)

		bars := map[string]TechSummary{}
		for _, tech := range res.Techniques {
			var s TechSummary
			n := 0.0
			for _, r := range recs {
				if r.tech != tech {
					continue
				}
				n++
				switch r.v {
				case estimator.NotApplicable:
					s.NotApplicable++
				case estimator.Optimistic:
					s.Optimistic++
				case estimator.Correct:
					s.Correct++
				case estimator.Pessimistic:
					s.Pessimistic++
				}
			}
			if n > 0 {
				s.NotApplicable /= n
				s.Optimistic /= n
				s.Correct /= n
				s.Pessimistic /= n
			}
			bars[tech] = s
		}
		res.Bars[kind.String()] = bars
	}

	// §3 statistics from the Facebook records.
	var fbBoot, fbBootWide, fbBootNarrow float64
	var fbCLTApplicable, fbCLTTotal float64
	var minMaxTotal, minMaxFail, udfTotal, udfFail float64
	for _, r := range all {
		if r.spec.Trace != workload.Facebook {
			continue
		}
		switch r.tech {
		case "bootstrap":
			fbBoot++
			if r.v == estimator.Pessimistic {
				fbBootWide++
			}
			if r.v == estimator.Optimistic {
				fbBootNarrow++
			}
			switch r.spec.Query.Kind {
			case estimator.Min, estimator.Max:
				minMaxTotal++
				if r.v != estimator.Correct {
					minMaxFail++
				}
			case estimator.UDF:
				udfTotal++
				if r.v != estimator.Correct {
					udfFail++
				}
			}
		case "closed-form":
			fbCLTTotal++
			if r.v != estimator.NotApplicable {
				fbCLTApplicable++
			}
		}
	}
	res.S3 = S3Stats{
		BootstrapTooWide:    frac(fbBootWide, fbBoot),
		BootstrapTooNarrow:  frac(fbBootNarrow, fbBoot),
		CLTApplicable:       frac(fbCLTApplicable, fbCLTTotal),
		BootstrapFailMinMax: frac(minMaxFail, minMaxTotal),
		BootstrapFailUDF:    frac(udfFail, udfTotal),
	}
	return res
}

func frac(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

type traceRec struct {
	spec workload.QuerySpec
	tech string
	v    estimator.Verdict
}

// evaluateTrace runs the §3 protocol for both techniques over every query
// of the trace, in parallel across queries.
func evaluateTrace(cfg Config, trace []workload.QuerySpec, evalCfg estimator.EvalConfig) []traceRec {
	type job struct{ qi int }
	out := make([][]traceRec, len(trace))
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := trace[j.qi]
				src := cfg.stream("fig3/"+spec.Trace.String(), j.qi)
				boot := estimator.Evaluate(src, spec.Population, spec.Query,
					estimator.Bootstrap{K: cfg.BootstrapK}, evalCfg)
				cf := estimator.Evaluate(src, spec.Population, spec.Query,
					estimator.ClosedForm{}, evalCfg)
				out[j.qi] = []traceRec{
					{spec: spec, tech: "bootstrap", v: boot.Verdict},
					{spec: spec, tech: "closed-form", v: cf.Verdict},
				}
			}
		}()
	}
	for qi := range trace {
		jobs <- job{qi}
	}
	close(jobs)
	wg.Wait()
	var flat []traceRec
	for _, recs := range out {
		flat = append(flat, recs...)
	}
	return flat
}

// Render writes the figure as a text table.
func (r *Fig3Result) Render(w io.Writer) {
	fprintf(w, "Fig. 3 — estimation accuracy by trace and technique (fractions of queries)\n")
	fprintf(w, "%-24s %-14s %-14s %-10s %-12s\n",
		"trace/technique", "not-applicable", "optimistic", "correct", "pessimistic")
	for _, trace := range r.Traces {
		for _, tech := range r.Techniques {
			s := r.Bars[trace][tech]
			fprintf(w, "%-24s %-14.1f %-14.1f %-10.1f %-12.1f\n",
				trace+"/"+tech, 100*s.NotApplicable, 100*s.Optimistic,
				100*s.Correct, 100*s.Pessimistic)
		}
	}
	fprintf(w, "\n§3 statistics (Facebook trace; paper values in parentheses):\n")
	fprintf(w, "  bootstrap too wide:   %5.1f%%  (23.94%%)\n", 100*r.S3.BootstrapTooWide)
	fprintf(w, "  bootstrap too narrow: %5.1f%%  (12.2%%)\n", 100*r.S3.BootstrapTooNarrow)
	fprintf(w, "  CLT applicable:       %5.1f%%  (56.78%%)\n", 100*r.S3.CLTApplicable)
	fprintf(w, "  bootstrap fails on MIN/MAX: %5.1f%%  (86.17%%)\n", 100*r.S3.BootstrapFailMinMax)
	fprintf(w, "  bootstrap fails on UDFs:    %5.1f%%  (23.19%%)\n", 100*r.S3.BootstrapFailUDF)
}
