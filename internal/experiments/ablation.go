package experiments

import (
	"context"
	"io"
	"sync"

	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/sample"
	"repro/internal/workload"
)

// DiagAblationResult reports diagnostic accuracy and cost as a function of
// p, the number of subsamples per ladder size — the knob behind the
// paper's "tens of thousands of subsample queries" and the reason the
// systems optimizations matter. More subsamples buy accuracy (fewer noisy
// rejections) at linear cost.
type DiagAblationResult struct {
	Ps []int
	// Accuracy is the fraction of queries the diagnostic judged correctly
	// at each p.
	Accuracy []float64
	// FalsePositives is the dangerous-direction error rate at each p.
	FalsePositives []float64
	// SubsampleQueries is the mean number of subsample evaluations the
	// diagnostic performed per query at each p (the cost axis).
	SubsampleQueries []float64
}

// DiagnosticAblation sweeps the diagnostic's p parameter over a mixed
// easy/hard workload, holding the expensive ground truth fixed per query.
func DiagnosticAblation(cfg Config) *DiagAblationResult {
	ps := []int{25, 50, 100}
	q1, q2 := workload.GenerateQSets(workload.Conviva, cfg.QueriesPerSet,
		cfg.PopulationSize, cfg.Seed+77)
	queries := append(append([]workload.QuerySpec{}, q1...), q2...)

	type truthRec struct {
		xi    estimator.Estimator
		works bool
		ok    bool
	}
	truths := make([]truthRec, len(queries))
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	// Ground truth once per query.
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				spec := queries[qi]
				var xi estimator.Estimator
				if spec.Query.ClosedFormApplicable() {
					xi = estimator.ClosedForm{}
				} else {
					xi = estimator.Bootstrap{K: cfg.BootstrapK}
				}
				if !xi.AppliesTo(spec.Query) {
					continue
				}
				src := cfg.stream("ablation-truth", qi)
				works := estimator.EstimationWorks(src, spec.Population, spec.Query, xi,
					estimator.EvalConfig{
						SampleSize: cfg.SampleSize,
						Trials:     cfg.Trials,
						TruthP:     cfg.truthP(),
						Alpha:      0.95, DeltaTol: 0.2, FailFrac: 0.05,
					})
				truths[qi] = truthRec{xi: xi, works: works, ok: true}
			}
		}()
	}
	for qi := range queries {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()

	res := &DiagAblationResult{Ps: ps}
	for _, p := range ps {
		var tally diagnostic.Tally
		totalSubQ := 0
		counted := 0
		for qi, spec := range queries {
			if !truths[qi].ok {
				continue
			}
			src := cfg.stream("ablation-diag", qi*1000+p)
			s := sample.WithReplacement(src, spec.Population, cfg.SampleSize)
			dcfg := diagnostic.DefaultConfig(len(s))
			dcfg.P = p
			b3 := len(s) / (2 * p)
			if b3 < 4 {
				continue
			}
			dcfg.SubsampleSizes = []int{b3 / 4, b3 / 2, b3}
			dres, err := diagnostic.Run(context.Background(), src, s, spec.Query, truths[qi].xi, dcfg)
			if err != nil {
				continue
			}
			tally.Add(diagnostic.Assess(dres.OK, truths[qi].works))
			totalSubQ += dres.SubsampleQueries
			counted++
		}
		res.Accuracy = append(res.Accuracy, tally.AccurateFrac())
		res.FalsePositives = append(res.FalsePositives, tally.Frac(diagnostic.FalsePositive))
		avg := 0.0
		if counted > 0 {
			avg = float64(totalSubQ) / float64(counted)
		}
		res.SubsampleQueries = append(res.SubsampleQueries, avg)
	}
	return res
}

// Render writes the ablation as a table.
func (r *DiagAblationResult) Render(w io.Writer) {
	fprintf(w, "Diagnostic ablation — accuracy and cost vs subsamples per size (p)\n")
	fprintf(w, "%-6s %-12s %-17s %-20s\n", "p", "accuracy", "false-positives", "subsample queries")
	for i, p := range r.Ps {
		fprintf(w, "%-6d %-12.2f %-17.2f %-20.0f\n",
			p, r.Accuracy[i], r.FalsePositives[i], r.SubsampleQueries[i])
	}
}
