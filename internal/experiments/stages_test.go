package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyStagesConfig keeps the stages run fast: small population, few
// resamples, two queries.
func tinyStagesConfig() Config {
	cfg := Quick()
	cfg.PopulationSize = 50000
	cfg.QueriesPerSet = 2
	cfg.Workers = 2
	return cfg
}

func TestStagesJSONRoundTrip(t *testing.T) {
	res := Stages(tinyStagesConfig())
	if len(res.Queries) != 2 {
		t.Fatalf("got %d queries, want 2 (QueriesPerSet truncation)", len(res.Queries))
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back StagesResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	for _, q := range back.Queries {
		if len(q.Spans) == 0 {
			t.Fatalf("%s: no spans survived JSON", q.SQL)
		}
		found := false
		for _, s := range q.Spans {
			if s.Stage == "scan" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: trace lacks a scan stage", q.SQL)
		}
	}
	if res.JSONName() != "BENCH_stages.json" {
		t.Fatalf("JSONName = %q", res.JSONName())
	}
	var out bytes.Buffer
	res.Render(&out)
	if !strings.Contains(out.String(), "SELECT AVG(X) FROM T") {
		t.Fatal("Render missing query text")
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "sql,stage,ms\n") {
		t.Fatalf("CSV header wrong: %q", csv.String()[:20])
	}
}

// TestStagesStructureDeterminism: two same-seed runs agree on every span
// stage sequence (durations differ, structure does not).
func TestStagesStructureDeterminism(t *testing.T) {
	shape := func(r *StagesResult) string {
		var b strings.Builder
		for _, q := range r.Queries {
			b.WriteString(q.SQL)
			for _, s := range q.Spans {
				b.WriteByte(' ')
				b.WriteString(s.Stage)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := Stages(tinyStagesConfig()), Stages(tinyStagesConfig())
	if shape(a) != shape(b) {
		t.Fatalf("stage sequences differ:\n%s\nvs\n%s", shape(a), shape(b))
	}
}
