package experiments

import (
	"context"
	"io"
	"sync"

	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/sample"
	"repro/internal/workload"
)

// Fig4Bars is one trace's diagnostic assessment (fractions of queries).
type Fig4Bars struct {
	AccurateApprox   float64 // diagnostic accepts and estimation works
	CorrectRejection float64 // diagnostic rejects and estimation fails
	FalsePositives   float64 // diagnostic accepts but estimation fails
	FalseNegatives   float64 // diagnostic rejects but estimation works
}

// Accuracy is the fraction of queries the diagnostic got right.
func (b Fig4Bars) Accuracy() float64 { return b.AccurateApprox + b.CorrectRejection }

// Fig4Result reports diagnostic accuracy per trace for one estimator
// class: Fig. 4(b) for closed forms, Fig. 4(c) for the bootstrap.
type Fig4Result struct {
	Estimator string
	Bars      map[string]Fig4Bars // trace name → bars
}

// Fig4b evaluates the diagnostic with closed-form ξ on workloads of
// AVG/COUNT/SUM/VARIANCE queries (paper: 100 queries per trace; ~73-81%
// accurately approximable, small FP/FN).
func Fig4b(cfg Config) *Fig4Result {
	return fig4(cfg, "closed-form", true)
}

// Fig4c evaluates the diagnostic with bootstrap ξ on complex-aggregate
// workloads (paper: 250 queries per trace; 62.8-89.2% accurate, FP ≤
// 3.2%, FN ≤ 5.4%).
func Fig4c(cfg Config) *Fig4Result {
	return fig4(cfg, "bootstrap", false)
}

func fig4(cfg Config, estName string, closedFormSet bool) *Fig4Result {
	res := &Fig4Result{Estimator: estName, Bars: map[string]Fig4Bars{}}
	for _, kind := range []workload.Kind{workload.Conviva, workload.Facebook} {
		qset1, qset2 := workload.GenerateQSets(kind, cfg.QueriesPerSet,
			cfg.PopulationSize, cfg.Seed+uint64(kind))
		queries := qset2
		if closedFormSet {
			queries = qset1
		}
		tally := assessQueries(cfg, kind, queries, estName)
		res.Bars[kind.String()] = Fig4Bars{
			AccurateApprox:   tally.Frac(diagnostic.TrueAccept),
			CorrectRejection: tally.Frac(diagnostic.TrueReject),
			FalsePositives:   tally.Frac(diagnostic.FalsePositive),
			FalseNegatives:   tally.Frac(diagnostic.FalseNegative),
		}
	}
	return res
}

// assessQueries runs the diagnostic on one sample per query and compares
// it with the expensive ground truth, in parallel across queries.
func assessQueries(cfg Config, kind workload.Kind, queries []workload.QuerySpec, estName string) *diagnostic.Tally {
	outcomes := make([]diagnostic.Outcome, len(queries))
	valid := make([]bool, len(queries))
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				spec := queries[qi]
				src := cfg.stream("fig4/"+estName+"/"+kind.String(), qi)
				var xi estimator.Estimator
				if estName == "closed-form" {
					xi = estimator.ClosedForm{}
				} else {
					xi = estimator.Bootstrap{K: cfg.BootstrapK}
				}
				if !xi.AppliesTo(spec.Query) {
					continue
				}
				s := sample.WithReplacement(src, spec.Population, cfg.SampleSize)
				dcfg := diagnostic.DefaultConfig(len(s))
				dcfg.P = cfg.DiagP
				b3 := len(s) / (2 * dcfg.P)
				dcfg.SubsampleSizes = []int{b3 / 4, b3 / 2, b3}
				dres, err := diagnostic.Run(context.Background(), src, s, spec.Query, xi, dcfg)
				if err != nil {
					continue
				}
				works := estimator.EstimationWorks(src, spec.Population, spec.Query, xi,
					estimator.EvalConfig{
						SampleSize: cfg.SampleSize,
						Trials:     cfg.Trials,
						TruthP:     cfg.truthP(),
						Alpha:      0.95,
						DeltaTol:   0.2,
						FailFrac:   0.05,
					})
				outcomes[qi] = diagnostic.Assess(dres.OK, works)
				valid[qi] = true
			}
		}()
	}
	for qi := range queries {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()
	tally := &diagnostic.Tally{}
	for qi := range queries {
		if valid[qi] {
			tally.Add(outcomes[qi])
		}
	}
	return tally
}

// Render writes the figure as a text table.
func (r *Fig4Result) Render(w io.Writer) {
	fprintf(w, "Fig. 4 — diagnostic accuracy for %s error estimation (%% of queries)\n",
		r.Estimator)
	fprintf(w, "%-10s %-18s %-18s %-16s %-16s %-9s\n", "trace",
		"accurate-approx", "correct-rejection", "false-positives", "false-negatives", "accuracy")
	for _, trace := range []string{"conviva", "facebook"} {
		b := r.Bars[trace]
		fprintf(w, "%-10s %-18.1f %-18.1f %-16.1f %-16.1f %-9.1f\n",
			trace, 100*b.AccurateApprox, 100*b.CorrectRejection,
			100*b.FalsePositives, 100*b.FalseNegatives, 100*b.Accuracy())
	}
}
