package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestFig1Shapes(t *testing.T) {
	cfg := Quick()
	res := Fig1(cfg)
	if len(res.RelErrs) != 4 {
		t.Fatalf("rel err grid = %v", res.RelErrs)
	}
	for _, tech := range Fig1Techniques {
		sizes := res.Sizes[tech]
		if len(sizes) != 4 {
			t.Fatalf("%s: %d points", tech, len(sizes))
		}
		// Required size must grow as the target error shrinks.
		for i := 1; i < len(sizes); i++ {
			if sizes[i].Mean <= sizes[i-1].Mean {
				t.Errorf("%s: size not increasing: %v", tech, sizes)
			}
		}
	}
	// CLT and bootstrap should track each other; Hoeffding should demand
	// 1–2 orders of magnitude more (the paper's headline for Fig. 1).
	for i := range res.RelErrs {
		clt := res.Sizes["clt-closed-form"][i].Mean
		boot := res.Sizes["bootstrap"][i].Mean
		h := res.Sizes["hoeffding"][i].Mean
		if r := boot / clt; r < 0.3 || r > 3 {
			t.Errorf("point %d: bootstrap/CLT size ratio = %v, want ~1", i, r)
		}
		if h < 8*clt {
			t.Errorf("point %d: Hoeffding %.3g not ≫ CLT %.3g", i, h, clt)
		}
	}
	if infl := res.HoeffdingInflation(3); infl < 10 || infl > 10000 {
		t.Errorf("Hoeffding inflation = %v, want 1-2 orders of magnitude", infl)
	}
}

func TestFig1Deterministic(t *testing.T) {
	a := Fig1(Quick())
	b := Fig1(Quick())
	for _, tech := range Fig1Techniques {
		for i := range a.Sizes[tech] {
			if a.Sizes[tech][i] != b.Sizes[tech][i] {
				t.Fatal("Fig1 not deterministic")
			}
		}
	}
}

func TestFig1Render(t *testing.T) {
	var buf bytes.Buffer
	Fig1(Quick()).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 1", "hoeffding", "bootstrap", "inflation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 3 regression is slow")
	}
	cfg := Quick()
	cfg.QueriesPerSet = 30 // enough for the marginal structure to appear
	res := Fig3(cfg)
	for _, trace := range res.Traces {
		bars := res.Bars[trace]
		boot := bars["bootstrap"]
		cf := bars["closed-form"]
		// Every fraction set must sum to ~1.
		for name, s := range map[string]TechSummary{"bootstrap": boot, "closed-form": cf} {
			sum := s.NotApplicable + s.Optimistic + s.Correct + s.Pessimistic
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s/%s fractions sum to %v", trace, name, sum)
			}
		}
		// The bootstrap applies almost everywhere; closed forms do not.
		if boot.NotApplicable > 0.05 {
			t.Errorf("%s: bootstrap not-applicable = %v", trace, boot.NotApplicable)
		}
		if cf.NotApplicable < 0.25 {
			t.Errorf("%s: closed-form not-applicable = %v, want substantial", trace, cf.NotApplicable)
		}
		// Neither technique is perfect: some failures must appear.
		if boot.Optimistic+boot.Pessimistic == 0 {
			t.Errorf("%s: bootstrap shows no failures at all", trace)
		}
		// But both work often enough that sampling is worthwhile.
		if boot.Correct < 0.2 {
			t.Errorf("%s: bootstrap correct = %v, implausibly low", trace, boot.Correct)
		}
	}
	// §3: MIN/MAX break the bootstrap far more often than average.
	if res.S3.BootstrapFailMinMax < 0.4 {
		t.Errorf("bootstrap MIN/MAX failure rate = %v, want high (paper: 86%%)",
			res.S3.BootstrapFailMinMax)
	}
	if res.S3.CLTApplicable < 0.3 || res.S3.CLTApplicable > 0.9 {
		t.Errorf("CLT applicability = %v, want around half (paper: 57%%)",
			res.S3.CLTApplicable)
	}
}

func TestFig3Render(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 3 rendering runs the full estimator evaluation")
	}
	cfg := Quick()
	cfg.QueriesPerSet = 6
	var buf bytes.Buffer
	Fig3(cfg).Render(&buf)
	for _, want := range []string{"Fig. 3", "facebook/bootstrap", "conviva/closed-form", "§3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4DiagnosticAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic accuracy experiment is slow")
	}
	cfg := Quick()
	for name, f := range map[string]func(Config) *Fig4Result{"4b": Fig4b, "4c": Fig4c} {
		res := f(cfg)
		for _, trace := range []string{"conviva", "facebook"} {
			b := res.Bars[trace]
			sum := b.AccurateApprox + b.CorrectRejection + b.FalsePositives + b.FalseNegatives
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s/%s: fractions sum to %v", name, trace, sum)
			}
			if b.Accuracy() < 0.5 {
				t.Errorf("%s/%s: diagnostic accuracy = %v, want > 0.5 (paper: > 0.9)",
					name, trace, b.Accuracy())
			}
		}
		var buf bytes.Buffer
		res.Render(&buf)
		if !strings.Contains(buf.String(), "Fig. 4") {
			t.Error("render malformed")
		}
	}
}

func TestFig7NaiveIsSlowAndDiagDominated(t *testing.T) {
	res := Fig7(Quick())
	if len(res.QSet1) == 0 || len(res.QSet2) == 0 {
		t.Fatal("empty query sets")
	}
	// QSet-2 (bootstrap everywhere) is much slower than QSet-1.
	m1, m2 := MedianTotal(res.QSet1), MedianTotal(res.QSet2)
	if m2 < 3*m1 {
		t.Errorf("naive QSet-2 median %.1fs not ≫ QSet-1 median %.1fs", m2, m1)
	}
	if m2 < 60 {
		t.Errorf("naive QSet-2 median %.1fs, want minutes", m2)
	}
	// Diagnostics dominate the naive pipeline.
	for _, b := range res.QSet2 {
		if b.DiagSec < b.QuerySec {
			t.Errorf("naive diagnostics (%.1fs) should dominate execution (%.1fs)",
				b.DiagSec, b.QuerySec)
			break
		}
	}
}

func TestFig9OptimizedIsInteractive(t *testing.T) {
	res := Fig9(Quick())
	for name, set := range map[string][]string{} {
		_ = name
		_ = set
	}
	if m := MaxTotal(res.QSet1); m > 10 {
		t.Errorf("optimized QSet-1 max %.1fs, want interactive", m)
	}
	if m := MaxTotal(res.QSet2); m > 15 {
		t.Errorf("optimized QSet-2 max %.1fs, want interactive", m)
	}
	// End-to-end improvement vs naive: 10–200x (paper §7.4).
	naive := Fig7(Quick())
	speedup := MedianTotal(naive.QSet2) / MedianTotal(res.QSet2)
	if speedup < 10 {
		t.Errorf("end-to-end median speedup = %.1fx, want >= 10x", speedup)
	}
}

func TestFig8abSpeedupOrdering(t *testing.T) {
	res := Fig8ab(Quick())
	if Median(res.ErrQ2) < 5 {
		t.Errorf("QSet-2 error-estimation speedup median = %.1fx, want large", Median(res.ErrQ2))
	}
	if Median(res.DiagQ2) < 10 {
		t.Errorf("QSet-2 diagnostics speedup median = %.1fx, want large", Median(res.DiagQ2))
	}
	if Median(res.ErrQ2) < 2*Median(res.ErrQ1) {
		t.Errorf("QSet-2 error speedups (%.1fx) should dwarf QSet-1's (%.1fx)",
			Median(res.ErrQ2), Median(res.ErrQ1))
	}
	if Median(res.DiagQ1) < 2 {
		t.Errorf("QSet-1 diagnostics speedup median = %.1fx, want >= 2x", Median(res.DiagQ1))
	}
}

func TestFig8efTuningHelps(t *testing.T) {
	res := Fig8ef(Quick())
	// End-to-end, physical tuning must help on both query sets. Individual
	// CPU-bound components can legitimately prefer more machines, so the
	// per-component medians are only reported, not asserted.
	for name, xs := range map[string][]float64{
		"total/qset1": res.TotalQ1, "total/qset2": res.TotalQ2,
	} {
		if Median(xs) < 1 {
			t.Errorf("%s: physical tuning slowed things down (median %.2fx)", name, Median(xs))
		}
	}
	// Scan-heavy QSet-2 queries benefit measurably.
	if Median(res.TotalQ2) < 1.1 {
		t.Errorf("QSet-2 end-to-end tuning speedup = %.2fx, want >= 1.1x", Median(res.TotalQ2))
	}
}

func TestFig8cInteriorOptimum(t *testing.T) {
	res := Fig8c(Quick())
	opt := res.OptimumX()
	if opt <= res.X[0] || opt >= res.X[len(res.X)-1] {
		t.Errorf("parallelism optimum at boundary: %v (times %+v)", opt, res.Times)
	}
}

func TestFig8dInteriorOptimum(t *testing.T) {
	res := Fig8d(Quick())
	opt := res.OptimumX()
	if opt <= 0.05 || opt >= 0.95 {
		t.Errorf("cache optimum at boundary: %v", opt)
	}
	if opt < 0.15 || opt > 0.7 {
		t.Errorf("cache optimum = %v, want in the paper's 0.3-0.4 neighbourhood", opt)
	}
}

func TestSystemRendersProduceOutput(t *testing.T) {
	cfg := Quick()
	var buf bytes.Buffer
	Fig7(cfg).Render(&buf)
	Fig9(cfg).Render(&buf)
	Fig8ab(cfg).Render(&buf)
	Fig8ef(cfg).Render(&buf)
	Fig8c(cfg).Render(&buf)
	Fig8d(cfg).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 7", "Fig. 9", "Fig. 8(a)", "Fig. 8(e)",
		"Fig. 8(c)", "Fig. 8(d)", "optimum"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSummarizeAndCDF(t *testing.T) {
	s := summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Q01 != 1 || s.Q99 != 4 {
		t.Errorf("summarize = %+v", s)
	}
	if got := summarize(nil); got.Mean != 0 {
		t.Errorf("empty summarize = %+v", got)
	}
	cdf := cdfPoints([]float64{1, 2, 3, 4}, 4)
	if len(cdf) != 4 || cdf[3][0] != 4 || cdf[3][1] != 1 {
		t.Errorf("cdf = %v", cdf)
	}
	if cdfPoints(nil, 4) != nil {
		t.Error("empty cdf should be nil")
	}
}

func TestConfigsDiffer(t *testing.T) {
	q, f := Quick(), Full()
	if q.QueriesPerSet >= f.QueriesPerSet || q.SampleSize >= f.SampleSize {
		t.Error("Quick should be smaller than Full")
	}
}

func TestDiagnosticAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	cfg := Quick()
	cfg.QueriesPerSet = 6
	res := DiagnosticAblation(cfg)
	if len(res.Ps) != 3 || len(res.Accuracy) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	// Cost must grow linearly in p.
	if !(res.SubsampleQueries[2] > res.SubsampleQueries[0]) {
		t.Errorf("subsample cost not increasing in p: %v", res.SubsampleQueries)
	}
	// Accuracy at the paper's p=100 should be at least as good as the
	// cheapest setting, within noise.
	if res.Accuracy[2] < res.Accuracy[0]-0.25 {
		t.Errorf("accuracy degraded with more subsamples: %v", res.Accuracy)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Diagnostic ablation") {
		t.Error("render malformed")
	}
}

func TestWriteCSVOutputs(t *testing.T) {
	cfg := Quick()
	cfg.QueriesPerSet = 4
	check := func(name string, r interface{ WriteCSV(io.Writer) error }, wantHeader string) {
		t.Helper()
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: csv has %d lines", name, len(lines))
		}
		if lines[0] != wantHeader {
			t.Errorf("%s: header %q, want %q", name, lines[0], wantHeader)
		}
	}
	check("fig1", Fig1(cfg), "technique,rel_err,mean_rows,q01_rows,q99_rows")
	check("fig7", Fig7(cfg), "qset,query,exec_sec,error_sec,diag_sec,total_sec")
	check("fig8ab", Fig8ab(cfg), "qset,component,query,speedup")
	check("fig8c", Fig8c(cfg), "x,mean_sec,q01_sec,q99_sec")
}
