package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/table"
)

// HistoryWritePoint is one fsync policy's measured append cost.
type HistoryWritePoint struct {
	// FsyncEvery is the durability knob (0 = OS-buffered, 1 = every
	// record, N = every Nth).
	FsyncEvery int `json:"fsync_every"`
	// Records is the number of appended records.
	Records int     `json:"records"`
	TotalMs float64 `json:"total_ms"`
	// MicrosPerRecord is the mean append latency.
	MicrosPerRecord float64 `json:"micros_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
}

// HistoryReplayPoint is one startup-replay measurement.
type HistoryReplayPoint struct {
	Records       int     `json:"records"`
	Segments      int     `json:"segments"`
	Ms            float64 `json:"ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// HistoryConvergencePoint tracks the profiler's selectivity-median
// estimate as queries accumulate.
type HistoryConvergencePoint struct {
	Queries int `json:"queries"`
	// SelP50 is the profile's GK-sketch median selectivity after Queries
	// folds; AbsErr is its distance from the generating distribution's
	// true median.
	SelP50 float64 `json:"sel_p50"`
	AbsErr float64 `json:"abs_err"`
}

// HistoryBenchResult quantifies the durable-telemetry tax and its payoff:
// the query-path overhead of writing history records, raw append
// throughput per fsync policy, replay time as the log grows, and how fast
// workload profiles converge on the workload's true shape.
type HistoryBenchResult struct {
	// EngineOverheadPct is the mean-latency overhead of the same query
	// workload with a history store attached vs. without (answers are
	// bit-identical either way).
	EngineOverheadPct float64              `json:"engine_overhead_pct"`
	EngineQueries     int                  `json:"engine_queries"`
	Writes            []HistoryWritePoint  `json:"writes"`
	Replay            []HistoryReplayPoint `json:"replay"`
	// TrueSelP50 is the generating distribution's median selectivity the
	// convergence sweep estimates.
	TrueSelP50  float64                   `json:"true_sel_p50"`
	Convergence []HistoryConvergencePoint `json:"convergence"`
}

// benchQueryRecord builds a representative query record (a few stages,
// two aggregates) so framing and fold costs match production records.
func benchQueryRecord(qid uint64, sel float64) history.QueryRecord {
	return history.QueryRecord{
		QID:            qid,
		SQL:            "SELECT AVG(X) FROM T WHERE X < ?",
		Table:          "T",
		Sample:         "10000",
		Predicate:      "(x < ?)",
		Outcome:        "ok",
		TotalMs:        3.5,
		StagesMs:       map[string]float64{"parse": 0.05, "plan": 0.1, "scan": 2.4, "estimate": 0.4},
		Selectivity:    sel,
		SampleFraction: 0.1,
		KBudget:        100,
		KUsed:          60,
		Aggs: []history.AggSample{
			{Kind: "AVG", RelErr: 0.01, Technique: "closed-form"},
			{Kind: "SUM", RelErr: 0.02, Technique: "bootstrap"},
		},
	}
}

// HistoryBench measures the persistent history store: engine write-path
// overhead, append throughput per fsync policy, replay scaling, and
// profile convergence.
func HistoryBench(cfg Config) *HistoryBenchResult {
	res := &HistoryBenchResult{}
	res.EngineOverheadPct, res.EngineQueries = historyEngineOverhead(cfg)
	res.Writes = historyWriteSweep(cfg)
	res.Replay = historyReplaySweep(cfg)
	res.TrueSelP50 = 0.25
	res.Convergence = historyConvergence(cfg)
	return res
}

// historyEngineOverhead serves the obs-overhead workload with and without
// a history store and compares mean latency.
func historyEngineOverhead(cfg Config) (pct float64, queries int) {
	src := cfg.stream("history-overhead-data", 0)
	n := cfg.PopulationSize
	xs := make(table.Float64Col, n)
	gs := make(table.StringCol, n)
	names := []string{"a", "b", "c", "d"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < n; i++ {
		gs[i] = names[zipf.Next()]
		xs[i] = src.LogNormal(4, 0.6)
	}
	tbl := table.MustNew(table.Schema{
		{Name: "X", Type: table.Float64},
		{Name: "G", Type: table.String},
	}, xs, gs)

	reps := cfg.QueriesPerSet
	if reps < 16 {
		reps = 16
	}
	run := func(withHistory bool) (meanMs float64, count int) {
		ecfg := core.Config{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			BootstrapK: cfg.BootstrapK,
			Obs:        obs.NewTracer(obs.Config{}),
		}
		var hist *history.Store
		if withHistory {
			dir, err := os.MkdirTemp("", "aqphist-bench")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			hist, err = history.Open(dir, history.Options{SampleInterval: -1})
			if err != nil {
				panic(err)
			}
			ecfg.History = hist
		}
		e := core.New(ecfg)
		if err := e.RegisterTable("T", tbl); err != nil {
			panic(err)
		}
		sampleRows := cfg.SampleSize
		if sampleRows > n/2 {
			sampleRows = n / 2
		}
		if err := e.BuildSamples("T", sampleRows); err != nil {
			panic(err)
		}
		for _, q := range obsOverheadQueries {
			if _, err := e.Query(q); err != nil {
				panic(fmt.Sprintf("history overhead warmup: %v", err))
			}
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range obsOverheadQueries {
				if _, err := e.Query(q); err != nil {
					panic(fmt.Sprintf("history overhead: %v", err))
				}
				count++
			}
		}
		total := time.Since(start)
		hist.Close()
		return float64(total) / float64(time.Millisecond) / float64(count), count
	}
	base, count := run(false)
	with, _ := run(true)
	if base > 0 {
		pct = (with - base) / base * 100
	}
	return pct, count
}

// historyWriteSweep measures raw append throughput per fsync policy.
func historyWriteSweep(cfg Config) []HistoryWritePoint {
	var out []HistoryWritePoint
	for _, p := range []struct{ fsyncEvery, records int }{
		{0, 20000}, {64, 20000}, {1, 500},
	} {
		dir, err := os.MkdirTemp("", "aqphist-write")
		if err != nil {
			panic(err)
		}
		s, err := history.Open(dir, history.Options{
			FsyncEvery:     p.fsyncEvery,
			SampleInterval: -1,
		})
		if err != nil {
			os.RemoveAll(dir)
			panic(err)
		}
		start := time.Now()
		for i := 0; i < p.records; i++ {
			s.AppendQuery(benchQueryRecord(uint64(i), 0.25))
		}
		total := time.Since(start)
		s.Close()
		os.RemoveAll(dir)
		ms := float64(total) / float64(time.Millisecond)
		out = append(out, HistoryWritePoint{
			FsyncEvery:      p.fsyncEvery,
			Records:         p.records,
			TotalMs:         ms,
			MicrosPerRecord: ms * 1000 / float64(p.records),
			RecordsPerSec:   float64(p.records) / total.Seconds(),
		})
	}
	return out
}

// historyReplaySweep writes logs of growing record counts and times the
// offline replay that startup recovery performs.
func historyReplaySweep(cfg Config) []HistoryReplayPoint {
	var out []HistoryReplayPoint
	for _, records := range []int{2000, 8000, 32000} {
		dir, err := os.MkdirTemp("", "aqphist-replay")
		if err != nil {
			panic(err)
		}
		s, err := history.Open(dir, history.Options{SampleInterval: -1})
		if err != nil {
			os.RemoveAll(dir)
			panic(err)
		}
		for i := 0; i < records; i++ {
			s.AppendQuery(benchQueryRecord(uint64(i), 0.25))
		}
		s.Close()
		start := time.Now()
		_, segs, err := history.Replay(dir)
		total := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			panic(err)
		}
		out = append(out, HistoryReplayPoint{
			Records:       records,
			Segments:      len(segs),
			Ms:            float64(total) / float64(time.Millisecond),
			RecordsPerSec: float64(records) / total.Seconds(),
		})
	}
	return out
}

// historyConvergence folds queries whose selectivity is drawn from a
// known distribution (U^2 on [0,1]; true median 0.25) and tracks the
// profile's GK-sketch median at checkpoint counts.
func historyConvergence(cfg Config) []HistoryConvergencePoint {
	src := cfg.stream("history-convergence", 0)
	dir, err := os.MkdirTemp("", "aqphist-conv")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	s, err := history.Open(dir, history.Options{SampleInterval: -1})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	key := history.Key{Table: "T", Sample: "10000", Agg: "AVG", Predicate: "(x < ?)"}
	checkpoints := []int{16, 64, 256, 1024, 4096}
	var out []HistoryConvergencePoint
	n := 0
	for _, cp := range checkpoints {
		for n < cp {
			u := src.Float64()
			s.AppendQuery(benchQueryRecord(uint64(n), u*u))
			n++
		}
		prof, ok := s.Profile(key)
		if !ok {
			panic("history convergence: profile key missing")
		}
		out = append(out, HistoryConvergencePoint{
			Queries: n,
			SelP50:  prof.Selectivity.P50,
			AbsErr:  math.Abs(prof.Selectivity.P50 - 0.25),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Queries < out[j].Queries })
	return out
}

// Render implements the aqpbench result interface.
func (r *HistoryBenchResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Durable telemetry: history store cost and profile convergence")
	fmt.Fprintln(w, "=============================================================")
	fmt.Fprintf(w, "engine write-path overhead: %+.2f%% over %d queries (history on vs off)\n",
		r.EngineOverheadPct, r.EngineQueries)
	fmt.Fprintf(w, "\n%-12s %8s %10s %12s %14s\n",
		"fsync_every", "records", "total_ms", "µs/record", "records/s")
	for _, p := range r.Writes {
		fmt.Fprintf(w, "%-12d %8d %10.1f %12.2f %14.0f\n",
			p.FsyncEvery, p.Records, p.TotalMs, p.MicrosPerRecord, p.RecordsPerSec)
	}
	fmt.Fprintf(w, "\n%-8s %9s %10s %14s\n", "replay", "records", "ms", "records/s")
	for _, p := range r.Replay {
		fmt.Fprintf(w, "%-8d %9d %10.2f %14.0f\n",
			p.Segments, p.Records, p.Ms, p.RecordsPerSec)
	}
	fmt.Fprintf(w, "\nprofile convergence (true sel p50 = %.3f)\n", r.TrueSelP50)
	fmt.Fprintf(w, "%-8s %10s %10s\n", "queries", "sel_p50", "abs_err")
	for _, p := range r.Convergence {
		fmt.Fprintf(w, "%-8d %10.4f %10.4f\n", p.Queries, p.SelP50, p.AbsErr)
	}
}

// WriteCSV emits the convergence sweep (the plottable series).
func (r *HistoryBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "queries,sel_p50,abs_err"); err != nil {
		return err
	}
	for _, p := range r.Convergence {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n",
			p.Queries, p.SelP50, p.AbsErr); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable results.
func (r *HistoryBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// JSONName routes aqpbench's JSON export to a history-specific file.
func (r *HistoryBenchResult) JSONName() string { return "BENCH_history.json" }
