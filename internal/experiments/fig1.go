package experiments

import (
	"io"
	"math"

	"repro/internal/estimator"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig1RelErrs are the target relative errors of Fig. 1's x-axis.
var Fig1RelErrs = []float64{0.32, 0.1, 0.032, 0.01}

// Fig1Techniques orders the compared techniques.
var Fig1Techniques = []string{"clt-closed-form", "bootstrap", "hoeffding"}

// Fig1Result reports, per technique and target relative error, the sample
// size the technique's error estimate asks for (mean over queries with
// .01/.99 quantile bars) — Fig. 1.
type Fig1Result struct {
	RelErrs []float64
	Sizes   map[string][]SizeStat
}

// Fig1 reproduces Fig. 1: "sample sizes suggested by different error
// estimation techniques for achieving different levels of relative error",
// over a Conviva-style workload of AVG queries. The expected shape: CLT
// and bootstrap track each other closely, Hoeffding demands samples 1–2
// orders of magnitude larger.
func Fig1(cfg Config) *Fig1Result {
	res := &Fig1Result{RelErrs: Fig1RelErrs, Sizes: map[string][]SizeStat{}}
	perTech := map[string][][]float64{}
	for _, t := range Fig1Techniques {
		perTech[t] = make([][]float64, len(Fig1RelErrs))
	}

	const alpha = 0.95
	z := stats.StdNormalQuantile(0.5 + alpha/2)
	hoeff := math.Sqrt(math.Log(2/(1-alpha)) / 2)

	dists := []workload.DataDist{
		workload.Gaussian, workload.Uniform, workload.Exponential,
		workload.LogNormalMild, workload.Bimodal,
	}
	for qi := 0; qi < cfg.QueriesPerSet; qi++ {
		src := cfg.stream("fig1", qi)
		pop := workload.GenerateColumn(src, dists[qi%len(dists)], cfg.PopulationSize)
		var m stats.Moments
		for _, x := range pop {
			m.Add(x)
		}
		mu, sigma := m.Mean(), m.Stddev()
		if mu == 0 {
			continue
		}
		rangeWidth := m.Max() - m.Min()

		// Bootstrap pilot: measure the bootstrap CI half-width at a pilot
		// size, then extrapolate by the 1/√n law the interval obeys.
		pilotN := 1000
		pilot := sample.WithReplacement(src, pop, pilotN)
		pilotIv, err := (estimator.Bootstrap{K: cfg.BootstrapK}).Interval(
			src, pilot, estimator.Query{Kind: estimator.Avg}, alpha)
		if err != nil {
			continue
		}

		for ei, eps := range Fig1RelErrs {
			target := eps * math.Abs(mu)
			clt := sq(z * sigma / target)
			boot := float64(pilotN) * sq(pilotIv.HalfWidth/target)
			hoeffN := sq(rangeWidth * hoeff / target)
			perTech["clt-closed-form"][ei] = append(perTech["clt-closed-form"][ei], clt)
			perTech["bootstrap"][ei] = append(perTech["bootstrap"][ei], boot)
			perTech["hoeffding"][ei] = append(perTech["hoeffding"][ei], hoeffN)
		}
	}
	for _, t := range Fig1Techniques {
		out := make([]SizeStat, len(Fig1RelErrs))
		for ei := range Fig1RelErrs {
			out[ei] = summarize(perTech[t][ei])
		}
		res.Sizes[t] = out
	}
	return res
}

func sq(x float64) float64 { return x * x }

// HoeffdingInflation returns the mean factor by which Hoeffding's
// suggested sample size exceeds the CLT's at the given target index — the
// paper's "1–2 orders of magnitude" claim.
func (r *Fig1Result) HoeffdingInflation(relErrIdx int) float64 {
	clt := r.Sizes["clt-closed-form"][relErrIdx].Mean
	h := r.Sizes["hoeffding"][relErrIdx].Mean
	if clt == 0 {
		return math.NaN()
	}
	return h / clt
}

// Render writes the figure as a text table.
func (r *Fig1Result) Render(w io.Writer) {
	fprintf(w, "Fig. 1 — sample size required per target relative error (mean [q01, q99])\n")
	fprintf(w, "%-18s", "technique")
	for _, e := range r.RelErrs {
		fprintf(w, " | rel.err %-7.3g", e)
	}
	fprintf(w, "\n")
	for _, t := range Fig1Techniques {
		fprintf(w, "%-18s", t)
		for _, s := range r.Sizes[t] {
			fprintf(w, " | %-15.3g", s.Mean)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "Hoeffding/CLT inflation at rel.err 0.01: %.0fx\n", r.HoeffdingInflation(3))
}

var _ = rng.New // keep the deterministic-stream dependency explicit
