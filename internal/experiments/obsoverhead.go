package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/table"
	"repro/internal/watchdog"
)

// obsOverheadQueries is the mixed workload the overhead measurement
// serves under each telemetry mode: closed-form, filtered scaled sum,
// bootstrap percentile, and a GROUP BY fan-out.
var obsOverheadQueries = []string{
	"SELECT AVG(X) FROM T",
	"SELECT SUM(X) FROM T WHERE G = 'a'",
	"SELECT PERCENTILE(X, 0.9) FROM T",
	"SELECT AVG(X) FROM T GROUP BY G",
}

// ObsOverheadMode is one telemetry configuration's measured cost.
type ObsOverheadMode struct {
	// Mode is "off", "spans", "spans+eventlog", "spans+watchdog" or
	// "spans+history".
	Mode string `json:"mode"`
	// Queries is the number of timed queries.
	Queries int `json:"queries"`
	// TotalMs and MeanMs are wall-clock over the timed loop.
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	// OverheadPct is the mean-latency overhead relative to the "off"
	// baseline; negative values are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsOverheadResult quantifies the telemetry tax: the same workload on
// the same data and seed, served with telemetry off, with trace spans,
// with spans plus the structured event log, and with spans plus the
// calibration watchdog (background audits enabled). The PR 2 invariant
// makes answers bit-identical across modes, so any latency difference is
// pure observability cost.
type ObsOverheadResult struct {
	Baseline string            `json:"baseline"`
	Modes    []ObsOverheadMode `json:"modes"`
}

// ObsOverhead measures per-query latency under each telemetry mode.
func ObsOverhead(cfg Config) *ObsOverheadResult {
	src := cfg.stream("obs-overhead-data", 0)
	n := cfg.PopulationSize
	xs := make(table.Float64Col, n)
	gs := make(table.StringCol, n)
	names := []string{"a", "b", "c", "d"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < n; i++ {
		gs[i] = names[zipf.Next()]
		xs[i] = src.LogNormal(4, 0.6)
	}
	tbl := table.MustNew(table.Schema{
		{Name: "X", Type: table.Float64},
		{Name: "G", Type: table.String},
	}, xs, gs)

	reps := cfg.QueriesPerSet
	if reps < 16 {
		reps = 16
	}

	run := func(mode string) ObsOverheadMode {
		ecfg := core.Config{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			BootstrapK: cfg.BootstrapK,
		}
		var wd *watchdog.Watchdog
		var hist *history.Store
		switch mode {
		case "off":
		case "spans":
			ecfg.Obs = obs.NewTracer(obs.Options{})
		case "spans+eventlog":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			ecfg.EventLog = obs.NewEventLog(io.Discard, obs.EventLogOptions{})
		case "spans+watchdog":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			wd = watchdog.New(watchdog.Config{
				AuditFraction: 1.0 / 16,
				Metrics:       ecfg.Obs.Registry(),
			})
			ecfg.Watchdog = wd
		case "spans+history":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			dir, err := os.MkdirTemp("", "aqphist-obs")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			hist, err = history.Open(dir, history.Options{SampleInterval: -1})
			if err != nil {
				panic(err)
			}
			ecfg.History = hist
		}
		e := core.New(ecfg)
		if err := e.RegisterTable("T", tbl); err != nil {
			panic(err)
		}
		sampleRows := cfg.SampleSize
		if sampleRows > n/2 {
			sampleRows = n / 2
		}
		if err := e.BuildSamples("T", sampleRows); err != nil {
			panic(err)
		}
		// One untimed pass warms caches and the sample catalog.
		for _, q := range obsOverheadQueries {
			if _, err := e.Query(q); err != nil {
				panic(fmt.Sprintf("obs-overhead %s warmup: %v", mode, err))
			}
		}
		count := 0
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range obsOverheadQueries {
				if _, err := e.Query(q); err != nil {
					panic(fmt.Sprintf("obs-overhead %s: %v", mode, err))
				}
				count++
			}
		}
		total := time.Since(start)
		wd.Close()   // drain background audits outside the timed loop
		hist.Close() // flush history outside the timed loop
		totalMs := float64(total) / float64(time.Millisecond)
		return ObsOverheadMode{
			Mode:    mode,
			Queries: count,
			TotalMs: totalMs,
			MeanMs:  totalMs / float64(count),
		}
	}

	res := &ObsOverheadResult{Baseline: "off"}
	var base float64
	for _, mode := range []string{"off", "spans", "spans+eventlog", "spans+watchdog", "spans+history"} {
		m := run(mode)
		if mode == "off" {
			base = m.MeanMs
		}
		if base > 0 {
			m.OverheadPct = (m.MeanMs - base) / base * 100
		}
		res.Modes = append(res.Modes, m)
	}
	return res
}

// Render implements the aqpbench result interface.
func (r *ObsOverheadResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Telemetry overhead (same workload, answers bit-identical)")
	fmt.Fprintln(w, "=========================================================")
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s\n",
		"mode", "queries", "total_ms", "mean_ms", "overhead%")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "%-16s %8d %10.1f %10.3f %+10.2f\n",
			m.Mode, m.Queries, m.TotalMs, m.MeanMs, m.OverheadPct)
	}
}

// WriteCSV emits one row per mode.
func (r *ObsOverheadResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "mode,queries,total_ms,mean_ms,overhead_pct"); err != nil {
		return err
	}
	for _, m := range r.Modes {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.4f,%.3f\n",
			m.Mode, m.Queries, m.TotalMs, m.MeanMs, m.OverheadPct); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable results.
func (r *ObsOverheadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// JSONName routes aqpbench's JSON export to an overhead-specific file.
func (r *ObsOverheadResult) JSONName() string { return "BENCH_obs_overhead.json" }
