package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/table"
	"repro/internal/watchdog"
)

// obsOverheadQueries is the mixed workload the overhead measurement
// serves under each telemetry mode: closed-form, filtered scaled sum,
// bootstrap percentile, and a GROUP BY fan-out.
var obsOverheadQueries = []string{
	"SELECT AVG(X) FROM T",
	"SELECT SUM(X) FROM T WHERE G = 'a'",
	"SELECT PERCENTILE(X, 0.9) FROM T",
	"SELECT AVG(X) FROM T GROUP BY G",
}

// ObsOverheadMode is one telemetry configuration's measured cost.
type ObsOverheadMode struct {
	// Mode is "off", "spans", "spans+eventlog", "spans+watchdog",
	// "spans+history" or "spans+export".
	Mode string `json:"mode"`
	// Queries is the number of timed queries.
	Queries int `json:"queries"`
	// TotalMs and MeanMs are wall-clock over the timed loop.
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	// OverheadPct is the mean-latency overhead relative to the "off"
	// baseline; negative values are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsOverheadResult quantifies the telemetry tax: the same workload on
// the same data and seed, served with telemetry off, with trace spans,
// with spans plus the structured event log, the calibration watchdog
// (background audits enabled), the durable history store, and the OTLP
// span exporter posting to a local stub collector. The PR 2 invariant
// makes answers bit-identical across modes, so any latency difference is
// pure observability cost.
type ObsOverheadResult struct {
	Baseline string            `json:"baseline"`
	Modes    []ObsOverheadMode `json:"modes"`
}

// ObsOverhead measures per-query latency under each telemetry mode.
//
// Methodology: every mode's engine is built and warmed BEFORE any
// timing, then timed rounds interleave the modes round-robin. Running
// modes back-to-back instead (off first, everything else after) let
// slow environmental drift — CPU frequency scaling, page-cache and
// allocator warm-up — land entirely on the baseline, which showed up as
// impossible negative overheads for the later modes.
func ObsOverhead(cfg Config) *ObsOverheadResult {
	src := cfg.stream("obs-overhead-data", 0)
	n := cfg.PopulationSize
	xs := make(table.Float64Col, n)
	gs := make(table.StringCol, n)
	names := []string{"a", "b", "c", "d"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < n; i++ {
		gs[i] = names[zipf.Next()]
		xs[i] = src.LogNormal(4, 0.6)
	}
	tbl := table.MustNew(table.Schema{
		{Name: "X", Type: table.Float64},
		{Name: "G", Type: table.String},
	}, xs, gs)

	reps := cfg.QueriesPerSet
	if reps < 16 {
		reps = 16
	}

	// Local stub collector for spans+export: accepts and discards
	// OTLP/HTTP batches, so the measurement includes encode + queue +
	// POST cost without leaving the host.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	collector := &http.Server{Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			w.WriteHeader(http.StatusOK)
		})}
	go collector.Serve(ln) //nolint:errcheck
	defer collector.Close()

	type engMode struct {
		name  string
		eng   *core.Engine
		done  []func() // teardown, run after ALL timing (drains audits/history/export)
		total time.Duration
		count int
	}

	build := func(mode string) *engMode {
		m := &engMode{name: mode}
		ecfg := core.Config{
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			BootstrapK: cfg.BootstrapK,
		}
		switch mode {
		case "off":
		case "spans":
			ecfg.Obs = obs.NewTracer(obs.Options{})
		case "spans+eventlog":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			ecfg.EventLog = obs.NewEventLog(io.Discard, obs.EventLogOptions{})
		case "spans+watchdog":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			wd := watchdog.New(watchdog.Config{
				AuditFraction: 1.0 / 16,
				Metrics:       ecfg.Obs.Registry(),
			})
			ecfg.Watchdog = wd
			m.done = append(m.done, wd.Close)
		case "spans+history":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			dir, err := os.MkdirTemp("", "aqphist-obs")
			if err != nil {
				panic(err)
			}
			hist, err := history.Open(dir, history.Options{SampleInterval: -1})
			if err != nil {
				panic(err)
			}
			ecfg.History = hist
			m.done = append(m.done, func() {
				hist.Close()      //nolint:errcheck
				os.RemoveAll(dir) //nolint:errcheck
			})
		case "spans+export":
			ecfg.Obs = obs.NewTracer(obs.Options{})
			ecfg.ObsConfig = obs.Config{
				ExportURL: "http://" + ln.Addr().String() + "/v1/traces",
			}
		}
		e := core.New(ecfg)
		if err := e.RegisterTable("T", tbl); err != nil {
			panic(err)
		}
		sampleRows := cfg.SampleSize
		if sampleRows > n/2 {
			sampleRows = n / 2
		}
		if err := e.BuildSamples("T", sampleRows); err != nil {
			panic(err)
		}
		m.eng = e
		m.done = append(m.done, func() { e.Close() }) //nolint:errcheck
		return m
	}

	modes := make([]*engMode, 0, 6)
	for _, name := range []string{"off", "spans", "spans+eventlog",
		"spans+watchdog", "spans+history", "spans+export"} {
		modes = append(modes, build(name))
	}

	// One untimed pass per engine warms caches and the sample catalog —
	// after every engine exists, before any clock starts.
	for _, m := range modes {
		for _, q := range obsOverheadQueries {
			if _, err := m.eng.Query(q); err != nil {
				panic(fmt.Sprintf("obs-overhead %s warmup: %v", m.name, err))
			}
		}
	}

	// Interleaved timed rounds: each round visits every mode once.
	for r := 0; r < reps; r++ {
		for _, m := range modes {
			start := time.Now()
			for _, q := range obsOverheadQueries {
				if _, err := m.eng.Query(q); err != nil {
					panic(fmt.Sprintf("obs-overhead %s: %v", m.name, err))
				}
				m.count++
			}
			m.total += time.Since(start)
		}
	}

	// Drain background work (audits, history flush, export queue) outside
	// the timed region.
	for _, m := range modes {
		for _, f := range m.done {
			f()
		}
	}

	res := &ObsOverheadResult{Baseline: "off"}
	var base float64
	for _, m := range modes {
		totalMs := float64(m.total) / float64(time.Millisecond)
		out := ObsOverheadMode{
			Mode:    m.name,
			Queries: m.count,
			TotalMs: totalMs,
			MeanMs:  totalMs / float64(m.count),
		}
		if m.name == "off" {
			base = out.MeanMs
		}
		if base > 0 {
			out.OverheadPct = (out.MeanMs - base) / base * 100
		}
		res.Modes = append(res.Modes, out)
	}
	return res
}

// Render implements the aqpbench result interface.
func (r *ObsOverheadResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Telemetry overhead (same workload, answers bit-identical)")
	fmt.Fprintln(w, "=========================================================")
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s\n",
		"mode", "queries", "total_ms", "mean_ms", "overhead%")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "%-16s %8d %10.1f %10.3f %+10.2f\n",
			m.Mode, m.Queries, m.TotalMs, m.MeanMs, m.OverheadPct)
	}
}

// WriteCSV emits one row per mode.
func (r *ObsOverheadResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "mode,queries,total_ms,mean_ms,overhead_pct"); err != nil {
		return err
	}
	for _, m := range r.Modes {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.4f,%.3f\n",
			m.Mode, m.Queries, m.TotalMs, m.MeanMs, m.OverheadPct); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable results.
func (r *ObsOverheadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// JSONName routes aqpbench's JSON export to an overhead-specific file.
func (r *ObsOverheadResult) JSONName() string { return "BENCH_obs_overhead.json" }
