// Package sample implements the sampling layer of the AQP system: simple
// random samples (with and without replacement), the disjoint subsample
// partitioning the diagnostic relies on, stratified samples, and a
// BlinkDB-style catalog of pre-built samples from which the engine picks
// the cheapest sample that satisfies a query's error bound.
package sample

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

// WithReplacement draws n rows uniformly at random from xs with
// replacement, matching the paper's simple-random-sampling model (§2.1).
func WithReplacement(src *rng.Source, xs []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = xs[src.Intn(len(xs))]
	}
	return out
}

// WithoutReplacement draws n distinct rows uniformly at random from xs. It
// panics if n exceeds len(xs). For n much smaller than len(xs) it uses
// Floyd's algorithm; otherwise a partial Fisher–Yates shuffle.
func WithoutReplacement(src *rng.Source, xs []float64, n int) []float64 {
	m := len(xs)
	if n > m {
		panic(fmt.Sprintf("sample: cannot draw %d from %d without replacement", n, m))
	}
	if n*4 < m {
		// Floyd's algorithm: O(n) time, O(n) space.
		chosen := make(map[int]struct{}, n)
		out := make([]float64, 0, n)
		for j := m - n; j < m; j++ {
			t := src.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, xs[t])
		}
		// Shuffle so ordering carries no bias.
		src.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := src.Perm(m)[:n]
	out := make([]float64, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// TableWithReplacement draws n rows from tbl with replacement.
func TableWithReplacement(src *rng.Source, tbl *table.Table, n int) *table.Table {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = src.Intn(tbl.NumRows())
	}
	return tbl.Gather(idx)
}

// TableWithoutReplacement draws n distinct rows from tbl.
func TableWithoutReplacement(src *rng.Source, tbl *table.Table, n int) *table.Table {
	if n > tbl.NumRows() {
		panic(fmt.Sprintf("sample: cannot draw %d from %d rows", n, tbl.NumRows()))
	}
	idx := src.Perm(tbl.NumRows())[:n]
	return tbl.Gather(idx)
}

// Shuffled returns a uniformly shuffled copy of xs. A shuffled sample has
// the property the paper leans on throughout §5: any contiguous subset is
// itself a simple random sample, so diagnostic subsamples and parallel
// partitions require no further randomization.
func Shuffled(src *rng.Source, xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	src.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// DisjointSubsamples partitions the leading p*size elements of s into p
// disjoint, contiguous subsamples of the given size, as required by the
// diagnostic (Algorithm 1). s must already be a shuffled random sample.
// The returned slices share storage with s. An error is returned when s is
// too small to supply p disjoint subsamples.
func DisjointSubsamples(s []float64, size, p int) ([][]float64, error) {
	if size <= 0 || p <= 0 {
		return nil, fmt.Errorf("sample: invalid subsample shape size=%d p=%d", size, p)
	}
	if size*p > len(s) {
		return nil, fmt.Errorf(
			"sample: need %d rows for %d disjoint subsamples of %d, have %d",
			size*p, p, size, len(s))
	}
	out := make([][]float64, p)
	for i := 0; i < p; i++ {
		out[i] = s[i*size : (i+1)*size]
	}
	return out, nil
}

// Stratified draws up to capPerGroup rows per distinct key, a miniature of
// BlinkDB's stratified sample family that keeps rare groups represented.
// keys and xs must be parallel slices. The result preserves no particular
// order beyond per-group sampling.
func Stratified(src *rng.Source, keys []string, xs []float64, capPerGroup int) (outKeys []string, outXs []float64) {
	if len(keys) != len(xs) {
		panic("sample: Stratified requires parallel slices")
	}
	byKey := map[string][]int{}
	for i, k := range keys {
		byKey[k] = append(byKey[k], i)
	}
	// Deterministic group order for reproducibility.
	groups := make([]string, 0, len(byKey))
	for k := range byKey {
		groups = append(groups, k)
	}
	sort.Strings(groups)
	for _, k := range groups {
		idx := byKey[k]
		take := len(idx)
		if take > capPerGroup {
			take = capPerGroup
		}
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx[:take] {
			outKeys = append(outKeys, k)
			outXs = append(outXs, xs[i])
		}
	}
	return outKeys, outXs
}

// Stored is one pre-built sample in a Catalog: a shuffled uniform sample of
// the underlying dataset together with bookkeeping the planner needs.
type Stored struct {
	Name   string
	Rows   []float64 // shuffled sample values (aggregation column view)
	Table  *table.Table
	PopN   int  // size of the dataset the sample was drawn from
	Cached bool // whether the storage layer keeps it in memory
}

// SamplingFraction returns len(Rows)/PopN.
func (s *Stored) SamplingFraction() float64 {
	if s.PopN == 0 {
		return 0
	}
	return float64(len(s.Rows)) / float64(s.PopN)
}

// Catalog is the set of samples the engine maintains over one dataset,
// ordered by size. At query time the engine picks the smallest sample
// whose predicted error meets the bound (BlinkDB's sample-selection step).
type Catalog struct {
	samples []*Stored // ascending by len(Rows)
}

// NewCatalog builds a catalog holding uniform shuffled samples of the given
// sizes drawn without replacement from data.
func NewCatalog(src *rng.Source, data []float64, sizes []int, popName string) (*Catalog, error) {
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	c := &Catalog{}
	for _, n := range sorted {
		if n <= 0 || n > len(data) {
			return nil, fmt.Errorf("sample: catalog size %d invalid for dataset of %d", n, len(data))
		}
		rows := WithoutReplacement(src.Split(), data, n)
		c.samples = append(c.samples, &Stored{
			Name: fmt.Sprintf("%s/sample-%d", popName, n),
			Rows: rows,
			PopN: len(data),
		})
	}
	return c, nil
}

// Samples returns the stored samples in ascending size order.
func (c *Catalog) Samples() []*Stored { return c.samples }

// Largest returns the biggest stored sample, or nil when empty.
func (c *Catalog) Largest() *Stored {
	if len(c.samples) == 0 {
		return nil
	}
	return c.samples[len(c.samples)-1]
}

// RequiredSampleSize estimates the sample size needed for a CLT-style mean
// estimate to reach the target relative error at confidence alpha, given
// pilot estimates of the data's mean and standard deviation:
//
//	n ≈ (z · σ / (ε · |μ|))²
//
// This is the calculation behind Fig. 1's "sample size suggested by an
// error estimation technique" and behind the catalog's selection rule.
func RequiredSampleSize(mean, stddev, relErr, alpha float64) int {
	if relErr <= 0 || mean == 0 {
		return 1 << 62 // unsatisfiable
	}
	z := stats.StdNormalQuantile(0.5 + alpha/2)
	n := z * stddev / (relErr * abs(mean))
	size := int(n*n) + 1
	if size < 1 {
		size = 1
	}
	return size
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Select returns the smallest stored sample of at least minRows, or the
// largest available if none is big enough (the engine then knows the bound
// may be missed and can fall back). It returns nil for an empty catalog.
func (c *Catalog) Select(minRows int) *Stored {
	for _, s := range c.samples {
		if len(s.Rows) >= minRows {
			return s
		}
	}
	return c.Largest()
}

// SelectForError picks a sample for a target relative error at confidence
// alpha using pilot moments measured on the smallest sample. The boolean
// reports whether the chosen sample is predicted to satisfy the bound.
func (c *Catalog) SelectForError(relErr, alpha float64) (*Stored, bool) {
	if len(c.samples) == 0 {
		return nil, false
	}
	pilot := c.samples[0]
	var m stats.Moments
	for _, x := range pilot.Rows {
		m.Add(x)
	}
	need := RequiredSampleSize(m.Mean(), m.Stddev(), relErr, alpha)
	got := c.Select(need)
	return got, len(got.Rows) >= need
}
