package sample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

func seq(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

func TestWithReplacementShapeAndSupport(t *testing.T) {
	src := rng.New(1)
	xs := seq(100)
	s := WithReplacement(src, xs, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v > 99 {
			t.Fatalf("sampled value %v outside support", v)
		}
	}
}

func TestWithReplacementMeanConverges(t *testing.T) {
	src := rng.New(2)
	xs := seq(1000) // mean 499.5
	s := WithReplacement(src, xs, 200000)
	if m := stats.Mean(s); math.Abs(m-499.5) > 5 {
		t.Fatalf("sample mean %v too far from 499.5", m)
	}
}

func TestWithoutReplacementNoDuplicates(t *testing.T) {
	xs := seq(500)
	for _, n := range []int{10, 100, 400, 500} { // exercises Floyd and shuffle paths
		src := rng.New(uint64(n))
		s := WithoutReplacement(src, xs, n)
		if len(s) != n {
			t.Fatalf("n=%d: len = %d", n, len(s))
		}
		seen := map[float64]bool{}
		for _, v := range s {
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %v", n, v)
			}
			seen[v] = true
		}
	}
}

func TestWithoutReplacementPanicsWhenOverdrawn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overdraw did not panic")
		}
	}()
	WithoutReplacement(rng.New(1), seq(5), 6)
}

func TestTableSampling(t *testing.T) {
	tbl := table.MustNew(
		table.Schema{{Name: "x", Type: table.Float64}},
		table.Float64Col(seq(50)),
	)
	src := rng.New(3)
	wr := TableWithReplacement(src, tbl, 200)
	if wr.NumRows() != 200 {
		t.Fatalf("with-replacement rows = %d", wr.NumRows())
	}
	wor := TableWithoutReplacement(src, tbl, 20)
	if wor.NumRows() != 20 {
		t.Fatalf("without-replacement rows = %d", wor.NumRows())
	}
	seen := map[float64]bool{}
	for _, v := range wor.Column(0).(table.Float64Col) {
		if seen[v] {
			t.Fatal("table without-replacement produced duplicates")
		}
		seen[v] = true
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	src := rng.New(4)
	xs := seq(200)
	s := Shuffled(src, xs)
	if len(s) != len(xs) {
		t.Fatal("length changed")
	}
	// Original untouched.
	for i, v := range xs {
		if v != float64(i) {
			t.Fatal("Shuffled mutated its input")
		}
	}
	sum := stats.Sum(s)
	if sum != stats.Sum(xs) {
		t.Fatal("Shuffled is not a permutation")
	}
	// Not the identity with overwhelming probability.
	identical := true
	for i, v := range s {
		if v != float64(i) {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("Shuffled returned the identity permutation")
	}
}

func TestDisjointSubsamples(t *testing.T) {
	s := seq(100)
	subs, err := DisjointSubsamples(s, 10, 5)
	if err != nil {
		t.Fatalf("DisjointSubsamples: %v", err)
	}
	if len(subs) != 5 {
		t.Fatalf("p = %d", len(subs))
	}
	seen := map[float64]bool{}
	for _, sub := range subs {
		if len(sub) != 10 {
			t.Fatalf("subsample size = %d", len(sub))
		}
		for _, v := range sub {
			if seen[v] {
				t.Fatalf("value %v appears in two subsamples", v)
			}
			seen[v] = true
		}
	}
}

func TestDisjointSubsamplesErrors(t *testing.T) {
	if _, err := DisjointSubsamples(seq(10), 5, 3); err == nil {
		t.Error("insufficient rows not rejected")
	}
	if _, err := DisjointSubsamples(seq(10), 0, 3); err == nil {
		t.Error("zero size not rejected")
	}
	if _, err := DisjointSubsamples(seq(10), 5, 0); err == nil {
		t.Error("zero p not rejected")
	}
}

func TestQuickDisjointSubsamplesDisjoint(t *testing.T) {
	f := func(sizeRaw, pRaw uint8) bool {
		size := int(sizeRaw)%20 + 1
		p := int(pRaw)%10 + 1
		s := seq(size * p)
		subs, err := DisjointSubsamples(s, size, p)
		if err != nil {
			return false
		}
		count := 0
		for _, sub := range subs {
			count += len(sub)
		}
		return count == size*p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStratifiedCapsGroups(t *testing.T) {
	src := rng.New(5)
	keys := make([]string, 0, 110)
	xs := make([]float64, 0, 110)
	for i := 0; i < 100; i++ { // big group
		keys = append(keys, "big")
		xs = append(xs, float64(i))
	}
	for i := 0; i < 3; i++ { // rare group
		keys = append(keys, "rare")
		xs = append(xs, float64(1000+i))
	}
	outKeys, outXs := Stratified(src, keys, xs, 10)
	counts := map[string]int{}
	for _, k := range outKeys {
		counts[k]++
	}
	if counts["big"] != 10 {
		t.Errorf("big group sampled %d, want cap 10", counts["big"])
	}
	if counts["rare"] != 3 {
		t.Errorf("rare group sampled %d, want all 3", counts["rare"])
	}
	if len(outKeys) != len(outXs) {
		t.Error("stratified outputs not parallel")
	}
}

func TestCatalogConstructionAndSelect(t *testing.T) {
	src := rng.New(6)
	data := seq(100000)
	cat, err := NewCatalog(src, data, []int{1000, 10000, 50000}, "t")
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	if len(cat.Samples()) != 3 {
		t.Fatalf("catalog has %d samples", len(cat.Samples()))
	}
	if got := cat.Select(500); len(got.Rows) != 1000 {
		t.Errorf("Select(500) picked %d-row sample", len(got.Rows))
	}
	if got := cat.Select(5000); len(got.Rows) != 10000 {
		t.Errorf("Select(5000) picked %d-row sample", len(got.Rows))
	}
	if got := cat.Select(99999999); len(got.Rows) != 50000 {
		t.Errorf("oversized Select should return largest, got %d", len(got.Rows))
	}
	if lg := cat.Largest(); len(lg.Rows) != 50000 {
		t.Errorf("Largest = %d rows", len(lg.Rows))
	}
	if f := cat.Samples()[0].SamplingFraction(); math.Abs(f-0.01) > 1e-9 {
		t.Errorf("sampling fraction = %v", f)
	}
}

func TestCatalogRejectsBadSizes(t *testing.T) {
	src := rng.New(7)
	if _, err := NewCatalog(src, seq(10), []int{100}, "t"); err == nil {
		t.Error("oversized catalog sample not rejected")
	}
	if _, err := NewCatalog(src, seq(10), []int{0}, "t"); err == nil {
		t.Error("zero catalog sample not rejected")
	}
}

func TestRequiredSampleSizeScaling(t *testing.T) {
	// Quadrupling precision requirement (halving relErr) should 4x n.
	n1 := RequiredSampleSize(10, 5, 0.1, 0.95)
	n2 := RequiredSampleSize(10, 5, 0.05, 0.95)
	ratio := float64(n2) / float64(n1)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("halving relErr scaled n by %v, want ~4", ratio)
	}
	// Known value: z=1.96, sigma/mu = 0.5, relErr = 0.1 -> (1.96*5)^2 ≈ 96.
	if n1 < 90 || n1 > 102 {
		t.Errorf("n = %d, want ~96", n1)
	}
	// Degenerate inputs are unsatisfiable.
	if RequiredSampleSize(0, 5, 0.1, 0.95) < 1<<61 {
		t.Error("zero mean should be unsatisfiable")
	}
	if RequiredSampleSize(10, 5, 0, 0.95) < 1<<61 {
		t.Error("zero relErr should be unsatisfiable")
	}
}

func TestSelectForError(t *testing.T) {
	src := rng.New(8)
	// Low-variance data: small samples suffice.
	data := make([]float64, 100000)
	for i := range data {
		data[i] = 100 + src.NormFloat64()
	}
	cat, err := NewCatalog(src, data, []int{100, 1000, 10000}, "t")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := cat.SelectForError(0.01, 0.95)
	if !ok {
		t.Error("1% error on sigma/mu=0.01 data should be satisfiable")
	}
	if len(s.Rows) > 1000 {
		t.Errorf("picked %d-row sample for an easy bound", len(s.Rows))
	}
	// Impossibly tight bound: returns largest, ok=false.
	s, ok = cat.SelectForError(1e-9, 0.95)
	if ok {
		t.Error("1e-9 relative error should not be satisfiable")
	}
	if len(s.Rows) != 10000 {
		t.Error("unsatisfiable bound should fall back to largest sample")
	}
}
