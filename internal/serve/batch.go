package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// Shared-scan batch formation: group commit over the admission layer.
//
// Admitted queries whose core.Engine.BatchKey matches join a forming
// batchGroup; the first member becomes the group's leader. The leader
// holds the group open for Config.BatchHold (or until it fills to
// Config.MaxBatch), then seals it and drives one Engine.RunSharedBatch
// call for every member, fanning each answer back through the member's
// buffered result channel. Every member — leader included — holds its own
// execution slot throughout, so batching changes how queries execute (one
// shared pass), not how many run at once.
//
// Cancellation: a member whose context ends while waiting returns
// immediately; its slot is released, the batch still computes its share
// under the member's (dead) context — failing fast per-member inside the
// engine — and the unread result is dropped into the buffered channel. The
// leader never abandons the group, even when its own context ends: the
// joiners' answers depend on it.

// batchRes is one member's outcome.
type batchRes struct {
	ans *core.Answer
	err error
}

// batchReq is one member's slot in a forming group.
type batchReq struct {
	ctx   context.Context
	query string
	wait  time.Duration
	res   chan batchRes // buffered 1: the leader never blocks delivering
}

// batchGroup is a forming batch, keyed in Server.batches by BatchKey.
type batchGroup struct {
	reqs []*batchReq
	full chan struct{} // closed when the group reaches MaxBatch
}

// submitBatched runs one admitted, batchable query through the group
// former. It returns the member's answer (bit-identical to unbatched
// execution) or its error.
func (s *Server) submitBatched(ctx context.Context, key, query string, wait time.Duration) (*core.Answer, error) {
	r := &batchReq{ctx: ctx, query: query, wait: wait, res: make(chan batchRes, 1)}
	s.mu.Lock()
	if s.batches == nil {
		s.batches = map[string]*batchGroup{}
	}
	g, joined := s.batches[key]
	if !joined {
		g = &batchGroup{full: make(chan struct{})}
		s.batches[key] = g
	}
	g.reqs = append(g.reqs, r)
	if len(g.reqs) >= s.cfg.MaxBatch {
		// Sealed by fill: remove the group so late arrivals start a new
		// one, and wake the leader.
		delete(s.batches, key)
		close(g.full)
	}
	s.mu.Unlock()

	if !joined {
		s.leadBatch(ctx, key, g)
	}
	select {
	case res := <-r.res:
		return res.ans, res.err
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: while batched: %w", ctx.Err())
	}
}

// leadBatch is the leader's half: hold the group open, seal it, execute
// the shared batch, distribute results.
func (s *Server) leadBatch(ctx context.Context, key string, g *batchGroup) {
	hold := time.NewTimer(s.cfg.batchHold())
	select {
	case <-g.full:
	case <-hold.C:
	case <-ctx.Done():
		// The leader's query is dead, but joiners may have arrived; seal
		// and execute for them (the leader's own member fails fast inside
		// the engine under its cancelled context).
	}
	hold.Stop()
	s.mu.Lock()
	if cur, ok := s.batches[key]; ok && cur == g {
		delete(s.batches, key)
	}
	members := g.reqs
	s.mu.Unlock()

	reqs := make([]core.BatchRequest, len(members))
	for i, m := range members {
		reqs[i] = core.BatchRequest{
			Ctx:   m.ctx,
			Query: m.query,
			Opts: core.RunOptions{
				BootstrapK: s.cfg.MaxBootstrapK,
				QueueWait:  m.wait,
			},
		}
	}
	s.batchesRun.Inc()
	s.batchedQueries.Add(int64(len(members)))
	s.hBatchSize.Observe(float64(len(members)))
	out := s.eng.RunSharedBatch(reqs)
	for i, m := range members {
		m.res <- batchRes{ans: out[i].Ans, err: out[i].Err}
	}
}
