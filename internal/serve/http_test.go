package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// doJSON posts a body to the handler and decodes the error envelope when
// the status is non-200.
func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, *ErrorResponse) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		return rec, nil
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("%s %s: status %d with non-JSON body %q", method, path, rec.Code, rec.Body.String())
	}
	return rec, &e
}

func TestHTTPQueryOK(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	s := New(eng, Config{})
	h := NewHTTPHandler(s, HTTPOptions{})

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT AVG(Price) FROM Orders"})
	rec, _ := doJSON(t, h, http.MethodPost, "/query", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Groups) != 1 || len(out.Groups[0].Aggs) != 1 {
		t.Fatalf("shape: %+v", out)
	}
	a := out.Groups[0].Aggs[0]
	if a.Name != "avg" || a.Estimate == 0 || a.Verdict == "" {
		t.Fatalf("agg: %+v", a)
	}
	// The JSON round-trips losslessly: the F64 codec is shortest-form.
	re, _ := json.Marshal(out)
	var back QueryResponse
	if err := json.Unmarshal(re, &back); err != nil {
		t.Fatal(err)
	}
	if back.Groups[0].Aggs[0].Estimate != a.Estimate {
		t.Fatal("estimate not bit-stable across JSON round trip")
	}
}

func TestHTTPRequestErrors(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	s := New(eng, Config{})
	h := NewHTTPHandler(s, HTTPOptions{MaxBodyBytes: 256})

	cases := []struct {
		name, method, body string
		status             int
	}{
		{"method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{not json", http.StatusBadRequest},
		{"missing sql", http.MethodPost, "{}", http.StatusBadRequest},
		{"oversize body", http.MethodPost,
			fmt.Sprintf(`{"sql":%q}`, strings.Repeat("x", 512)), http.StatusRequestEntityTooLarge},
		{"parse error", http.MethodPost, `{"sql":"SELECT FROM WHERE"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, e := doJSON(t, h, tc.method, "/query", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if e.Code == "" {
			t.Errorf("%s: error envelope missing code", tc.name)
		}
		if e.Retryable {
			t.Errorf("%s: client errors must not be marked retryable", tc.name)
		}
	}
}

func TestHTTPAuthorize(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	s := New(eng, Config{})
	h := NewHTTPHandler(s, HTTPOptions{
		Authorize: func(r *http.Request) error {
			if r.Header.Get("Authorization") != "Bearer open-sesame" {
				return fmt.Errorf("bad token")
			}
			return nil
		},
	})

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT AVG(Price) FROM Orders"})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("no token: status %d want 401", rec.Code)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "unauthorized" {
		t.Fatalf("401 envelope: %s (%v)", rec.Body.String(), err)
	}

	req = httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer open-sesame")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("with token: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHTTPQueueFull(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	s := New(eng, Config{MaxInFlight: 1, MaxQueue: -1, Metrics: obs.NewRegistry()})
	h := NewHTTPHandler(s, HTTPOptions{})

	// Hold the only slot so the next request is shed.
	if err := s.acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	defer s.release()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT AVG(Price) FROM Orders"})
	rec, e := doJSON(t, h, http.MethodPost, "/query", string(body))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429: %s", rec.Code, rec.Body.String())
	}
	if e.Code != "queue_full" || !e.Retryable {
		t.Fatalf("envelope: %+v", e)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

func TestHTTPHealthz(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	s := New(eng, Config{})
	h := NewHTTPHandler(s, HTTPOptions{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz during drain: %d %s", rec.Code, rec.Body.String())
	}
}

func TestHTTPPerRequestTimeout(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	defer eng.Close()
	// A crawling engine stand-in: hold the slot so Submit waits in the
	// queue past the request's own deadline.
	s := New(eng, Config{MaxInFlight: 1, MaxQueue: 4})
	h := NewHTTPHandler(s, HTTPOptions{})
	if err := s.acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	defer s.release()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT AVG(Price) FROM Orders", TimeoutMs: 20})
	rec, e := doJSON(t, h, http.MethodPost, "/query", string(body))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d want 504: %s", rec.Code, rec.Body.String())
	}
	if e.Code != "deadline" {
		t.Fatalf("envelope: %+v", e)
	}
}
