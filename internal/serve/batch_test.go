package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestBatchedSubmitMatchesDirect proves batching is invisible to clients:
// answers produced through a MaxBatch server are bit-identical to the same
// queries run directly on the engine.
func TestBatchedSubmitMatchesDirect(t *testing.T) {
	direct := testEngine(t, core.Config{Seed: 61, BootstrapK: 30})
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT AVG(Price), COUNT(*) FROM Orders WHERE Price > %d", 4+i)
	}
	want := make([]*core.Answer, len(queries))
	for i, q := range queries {
		ans, err := direct.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans
	}

	eng := testEngine(t, core.Config{Seed: 61, BootstrapK: 30})
	s := New(eng, Config{MaxInFlight: 8, MaxBatch: 8, BatchHold: 50 * time.Millisecond})
	got := make([]*core.Answer, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			ans, err := s.Submit(context.Background(), q)
			if err != nil {
				t.Errorf("%q: %v", q, err)
				return
			}
			got[i] = ans
		}(i, q)
	}
	wg.Wait()

	batched := 0
	for i := range queries {
		if got[i] == nil {
			continue
		}
		if got[i].SharedScan {
			batched++
		}
		if len(got[i].Groups) != len(want[i].Groups) {
			t.Fatalf("%q: group count differs", queries[i])
		}
		for gi := range want[i].Groups {
			for ai := range want[i].Groups[gi].Aggs {
				g, w := got[i].Groups[gi].Aggs[ai], want[i].Groups[gi].Aggs[ai]
				if g != w {
					t.Errorf("%q: agg %d:\n  got  %+v\n  want %+v", queries[i], ai, g, w)
				}
			}
		}
	}
	if batched == 0 {
		t.Error("no answer was produced from a shared-scan batch")
	}
}

// TestBatchFormationSealsAtMaxBatch proves a full group executes without
// waiting out the hold window, and that batch metrics are recorded.
func TestBatchFormationSealsAtMaxBatch(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, core.Config{Seed: 62, BootstrapK: 10})
	// Absurdly long hold: only the fill path can complete the batch fast.
	s := New(eng, Config{MaxInFlight: 4, MaxBatch: 4,
		BatchHold: time.Hour, Metrics: reg})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(),
				fmt.Sprintf("SELECT AVG(Price) FROM Orders WHERE Price > %d", i))
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("full batch waited %v; fill-seal did not fire", elapsed)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("member %d: %v", i, err)
		}
	}
	if v := reg.Counter("aqp_serve_batches_total", "").Value(); v < 1 {
		t.Errorf("batches_total = %d", v)
	}
	if v := reg.Counter("aqp_serve_batched_queries_total", "").Value(); v != 4 {
		t.Errorf("batched_queries_total = %d", v)
	}
}

// TestBatchHoldExpiry proves a lone batchable query is not stuck waiting
// for batchmates that never arrive.
func TestBatchHoldExpiry(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 63, BootstrapK: 10})
	s := New(eng, Config{MaxBatch: 16, BatchHold: 5 * time.Millisecond})
	start := time.Now()
	ans, err := s.Submit(context.Background(), "SELECT AVG(Price) FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	if ans == nil || len(ans.Groups) == 0 {
		t.Fatal("empty answer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone query held %v", elapsed)
	}
}

// TestNonBatchableBypassesBatcher: exact-path queries (no usable sample)
// must not enter group formation at all.
func TestNonBatchableBypassesBatcher(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 64})
	// DISTINCT of sorts: register a second, sampleless table.
	s := New(eng, Config{MaxBatch: 8, BatchHold: time.Hour})
	if _, ok := eng.BatchKey("SELECT AVG(Price) FROM Missing"); ok {
		t.Fatal("bogus query batchable")
	}
	// A malformed query must surface its parse error promptly, not hang in
	// a forming group.
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "SELECT FROM WHERE")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("malformed query succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("malformed query entered the batcher and hung")
	}
}

// TestBatchMemberCancellation: a member whose context dies while the group
// is held open returns promptly; its batchmates still get answers.
func TestBatchMemberCancellation(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 65, BootstrapK: 10})
	s := New(eng, Config{MaxInFlight: 8, MaxBatch: 8, BatchHold: 300 * time.Millisecond})

	// Leader with a healthy context.
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "SELECT AVG(Price) FROM Orders WHERE Price > 1")
		leaderDone <- err
	}()
	waitFor(t, "group to form", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.batches) > 0
	})

	// Joiner that gives up while the group is held open.
	jctx, jcancel := context.WithCancel(context.Background())
	joinerDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(jctx, "SELECT AVG(Price) FROM Orders WHERE Price > 2")
		joinerDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	jcancel()
	select {
	case err := <-joinerDone:
		if err == nil {
			t.Error("cancelled joiner got an answer before the hold expired")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled joiner did not return promptly")
	}
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed after joiner cancellation: %v", err)
	}
}

// TestConcurrentBatchedSubmit race-stresses batch formation: many
// goroutines submitting batchable and non-batchable queries through a
// batching server, with cancellations mixed in. Run under -race.
func TestConcurrentBatchedSubmit(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 66, BootstrapK: 10})
	s := New(eng, Config{MaxInFlight: 8, MaxQueue: 128, MaxBatch: 4,
		BatchHold: time.Millisecond})
	const submitters = 48
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := map[string]int{}
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%7 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				defer cancel()
			}
			q := fmt.Sprintf("SELECT AVG(Price) FROM Orders WHERE Price > %d", i%6)
			ans, err := s.Submit(ctx, q)
			if err != nil {
				mu.Lock()
				failures[obs.Outcome(err)]++
				mu.Unlock()
				return
			}
			if len(ans.Groups) == 0 {
				t.Errorf("empty answer for %q", q)
			}
		}(i)
	}
	wg.Wait()
	for outcome := range failures {
		if outcome != "cancelled" && outcome != "rejected" {
			t.Errorf("unexpected failure outcome %q (%d)", outcome, failures[outcome])
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
