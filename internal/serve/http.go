package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// The HTTP/JSON front end: POST /query submits SQL through the admission
// layer and returns per-aggregate estimates, CI bounds and verdicts;
// GET /healthz answers load-balancer probes and flips to 503 the moment a
// drain begins. Every admission outcome maps to a structured JSON error
// with a stable code (Classify) — never a bare connection reset — so
// clients can distinguish "back off and retry" (queue_full,
// shutting_down) from "your query is wrong" (bad_query).

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the query text (required).
	SQL string `json:"sql"`
	// TimeoutMs, when positive, caps this request's execution time under
	// the server-wide Config.Timeout (it can only tighten the deadline).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// ErrorResponse is the JSON error body for every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the transport-neutral rejection class from Classify, plus
	// the HTTP-only "bad_request" (malformed body) and "unauthorized".
	Code string `json:"code"`
	// Retryable marks load-shedding outcomes worth retrying after backoff.
	Retryable bool `json:"retryable,omitempty"`
}

// HTTPOptions tunes the HTTP front end.
type HTTPOptions struct {
	// Authorize, when set, vets every /query request before admission
	// (check a bearer token, map to a tenant, ...). A non-nil error
	// rejects with 401 and the error text.
	Authorize func(*http.Request) error
	// MaxBodyBytes bounds the request body (0 = 1 MiB).
	MaxBodyBytes int64
	// EventLog, when set, receives one conn-kind record per request
	// outcome class transition worth flagging (auth failures).
	EventLog *obs.EventLog
}

func (o HTTPOptions) maxBody() int64 {
	if o.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return o.MaxBodyBytes
}

// httpAPI is the handler state: the admission server plus cached metrics.
type httpAPI struct {
	s   *Server
	opt HTTPOptions

	inflight *obs.Gauge
	latency  *obs.Histogram
}

// NewHTTPHandler returns the HTTP/JSON front end for the server:
//
//	POST /query    {"sql": "...", "timeout_ms": 0}  →  QueryResponse
//	GET  /healthz  {"status":"ok"} or 503 {"status":"draining"}
//
// Metrics (on the server's Config.Metrics registry): aqp_http_inflight,
// aqp_http_requests_total{route,code}, aqp_http_request_seconds.
func NewHTTPHandler(s *Server, opt HTTPOptions) http.Handler {
	reg := s.cfg.Metrics
	api := &httpAPI{
		s:   s,
		opt: opt,
		inflight: reg.Gauge("aqp_http_inflight",
			"HTTP query requests currently being served."),
		latency: reg.Histogram("aqp_http_request_seconds",
			"End-to-end HTTP query latency (queue wait included).",
			obs.LatencyBuckets),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", api.handleQuery)
	mux.HandleFunc("/healthz", api.handleHealthz)
	return mux
}

// count meters one finished request.
func (a *httpAPI) count(route string, code int) {
	a.s.cfg.Metrics.Counter("aqp_http_requests_total",
		"HTTP requests by route and status code.",
		"route", route, "code", fmt.Sprintf("%d", code)).Inc()
}

// fail writes a structured JSON error.
func (a *httpAPI) fail(w http.ResponseWriter, route string, status int, code, msg string, retryable bool) {
	a.count(route, status)
	w.Header().Set("Content-Type", "application/json")
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{ //nolint:errcheck // best effort to a dying client
		Error: msg, Code: code, Retryable: retryable,
	})
}

// httpStatus maps a Classify code to its HTTP status.
func httpStatus(code string) int {
	switch code {
	case "queue_full":
		return http.StatusTooManyRequests // 429
	case "shutting_down":
		return http.StatusServiceUnavailable // 503
	case "deadline":
		return http.StatusGatewayTimeout // 504
	case "cancelled":
		// The nginx convention for "client closed request"; no stdlib
		// constant exists.
		return 499
	default:
		return http.StatusBadRequest
	}
}

func (a *httpAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	const route = "/query"
	if r.Method != http.MethodPost {
		a.fail(w, route, http.StatusMethodNotAllowed, "bad_request",
			"POST a JSON body to /query", false)
		return
	}
	// Trace propagation: honour an incoming W3C traceparent (the caller's
	// span becomes our parent), mint a root otherwise, and echo the
	// server-side context on every response — success or failure — so the
	// client can join its records to ours.
	tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tc = obs.NewTraceContext()
	}
	w.Header().Set("traceparent", tc.Traceparent())
	if a.opt.Authorize != nil {
		if err := a.opt.Authorize(r); err != nil {
			a.opt.EventLog.EmitConn(obs.ConnEvent{
				Transport: "http", Remote: r.RemoteAddr,
				Event: "auth_error", Err: err.Error(),
			})
			a.fail(w, route, http.StatusUnauthorized, "unauthorized",
				err.Error(), false)
			return
		}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, a.opt.maxBody()+1))
	if err != nil {
		a.fail(w, route, http.StatusBadRequest, "bad_request",
			"reading body: "+err.Error(), false)
		return
	}
	if int64(len(body)) > a.opt.maxBody() {
		a.fail(w, route, http.StatusRequestEntityTooLarge, "bad_request",
			fmt.Sprintf("body exceeds %d bytes", a.opt.maxBody()), false)
		return
	}
	var req QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		a.fail(w, route, http.StatusBadRequest, "bad_request",
			"parsing JSON body: "+err.Error(), false)
		return
	}
	if req.SQL == "" {
		a.fail(w, route, http.StatusBadRequest, "bad_request",
			`missing "sql" field`, false)
		return
	}
	ctx := obs.ContextWithTrace(r.Context(), tc)
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx,
			time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	a.inflight.Inc()
	start := time.Now()
	ans, err := a.s.Submit(ctx, req.SQL)
	a.latency.Observe(time.Since(start).Seconds())
	a.inflight.Dec()
	if err != nil {
		code, retryable := Classify(err)
		a.fail(w, route, httpStatus(code), code, err.Error(), retryable)
		return
	}
	a.count(route, http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	resp := EncodeAnswer(ans)
	resp.TraceID = tc.TraceIDString()
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Too late for a status change; the client sees a truncated body.
		return
	}
}

func (a *httpAPI) handleHealthz(w http.ResponseWriter, r *http.Request) {
	const route = "/healthz"
	w.Header().Set("Content-Type", "application/json")
	if a.s.Draining() {
		a.count(route, http.StatusServiceUnavailable)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	a.count(route, http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}
