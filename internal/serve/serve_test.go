package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/table"
)

// testEngine registers a sampled Orders table on a fresh engine.
func testEngine(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	const n = 4000
	src := rng.New(321)
	price := make(table.Float64Col, n)
	region := make(table.StringCol, n)
	names := []string{"east", "west", "north"}
	for i := 0; i < n; i++ {
		price[i] = 10 + 5*src.NormFloat64()
		region[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Price", Type: table.Float64},
		{Name: "Region", Type: table.String},
	}, price, region)
	e := core.New(cfg)
	if err := e.RegisterTable("Orders", tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildSamples("Orders", 1000); err != nil {
		t.Fatal(err)
	}
	return e
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitMatchesDirectQuery(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	s := New(eng, Config{})
	const q = "SELECT AVG(Price) FROM Orders GROUP BY Region"
	want, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("groups: got %d want %d", len(got.Groups), len(want.Groups))
	}
	for i := range got.Groups {
		for j := range got.Groups[i].Aggs {
			g, w := got.Groups[i].Aggs[j], want.Groups[i].Aggs[j]
			if g.Estimate != w.Estimate || g.ErrorBar.HalfWidth != w.ErrorBar.HalfWidth {
				t.Errorf("group %d agg %d: served answer diverged from direct query", i, j)
			}
		}
	}
}

// TestFIFOGrantOrder proves the wait queue is strict FIFO: with one slot
// held, waiters are granted in arrival order as the slot is handed over.
func TestFIFOGrantOrder(t *testing.T) {
	s := New(nil, Config{MaxInFlight: 1, MaxQueue: 8})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	grants := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			grants <- i
			s.release()
		}()
		// Serialize arrival so queue order is deterministic.
		waitFor(t, fmt.Sprintf("waiter %d queued", i), func() bool {
			return s.Queued() == i+1
		})
	}
	s.release()
	wg.Wait()
	close(grants)
	var order []int
	for g := range grants {
		order = append(order, g)
	}
	for i, g := range order {
		if g != i {
			t.Fatalf("grant order %v is not FIFO", order)
		}
	}
	if s.InFlight() != 0 || s.Queued() != 0 {
		t.Errorf("leaked admission state: inflight=%d queued=%d", s.InFlight(), s.Queued())
	}
}

func TestQueueFullRejection(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(nil, Config{MaxInFlight: 1, MaxQueue: 1, Metrics: reg})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		err := s.acquire(context.Background())
		if err == nil {
			s.release()
		}
		queued <- err
	}()
	waitFor(t, "one waiter queued", func() bool { return s.Queued() == 1 })
	if err := s.acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: got %v, want ErrQueueFull", err)
	}
	s.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	waitFor(t, "drain", func() bool { return s.InFlight() == 0 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `aqp_serve_rejected_total{reason="queue_full"} 1`) {
		t.Errorf("rejection not counted:\n%s", b.String())
	}
}

func TestNoQueueMode(t *testing.T) {
	s := New(nil, Config{MaxInFlight: 1, MaxQueue: -1})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want immediate ErrQueueFull", err)
	}
	s.release()
}

func TestQueuedWaiterCancellation(t *testing.T) {
	s := New(nil, Config{MaxInFlight: 1, MaxQueue: 4})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- s.acquire(ctx)
	}()
	waitFor(t, "waiter queued", func() bool { return s.Queued() == 1 })
	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	if s.Queued() != 0 {
		t.Errorf("cancelled waiter left in queue")
	}
	s.release()
}

func TestShutdown(t *testing.T) {
	s := New(nil, Config{MaxInFlight: 1, MaxQueue: 4})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error, 1)
	go func() { waiter <- s.acquire(context.Background()) }()
	waitFor(t, "waiter queued", func() bool { return s.Queued() == 1 })

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	if err := <-waiter; !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("queued waiter during shutdown: got %v, want ErrShuttingDown", err)
	}
	select {
	case err := <-done:
		t.Fatalf("shutdown returned %v with a query in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := s.acquire(context.Background()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown acquire: got %v, want ErrShuttingDown", err)
	}
	s.release()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestShutdownDrainDeadline(t *testing.T) {
	s := New(nil, Config{MaxInFlight: 1})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck drain: got %v, want DeadlineExceeded", err)
	}
	s.release()
}

// TestSubmitTimeout proves the per-query deadline reaches the engine: a
// PERCENTILE query (bootstrap path, many resamples) under a tiny budget
// returns a wrapped DeadlineExceeded and the cancelled counter moves.
func TestSubmitTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, core.Config{Seed: 9, BootstrapK: 2000})
	s := New(eng, Config{Timeout: time.Nanosecond, Metrics: reg})
	_, err := s.Submit(context.Background(), "SELECT PERCENTILE(Price, 0.5) FROM Orders")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "aqp_serve_cancelled_total 1") {
		t.Errorf("cancellation not counted:\n%s", b.String())
	}
}

// TestSubmitRecordsQueueWait pins the queue-wait plumbing end to end: a
// query that had to wait for a slot carries the wait in its trace
// snapshot (and so in /debug/queries and the event log), and the serving
// histogram observes it.
func TestSubmitRecordsQueueWait(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.Options{})
	eng := testEngine(t, core.Config{Seed: 13, Obs: tr})
	s := New(eng, Config{MaxInFlight: 1, MaxQueue: 4, Metrics: reg})

	// Hold the only slot so the submitted query must queue.
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "SELECT AVG(Price) FROM Orders")
		done <- err
	}()
	waitFor(t, "query queued", func() bool { return s.Queued() == 1 })
	time.Sleep(10 * time.Millisecond) // accrue a measurable wait
	s.release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	last, ok := tr.Last()
	if !ok {
		t.Fatal("no trace recorded")
	}
	if last.Outcome != "ok" {
		t.Fatalf("trace outcome = %q, want ok", last.Outcome)
	}
	if last.QueueWaitMs < 5 {
		t.Fatalf("trace queue wait = %vms, want >= the 10ms hold", last.QueueWaitMs)
	}
	if out := obs.FormatTrace(last); !strings.Contains(out, "queue_wait=") {
		t.Fatalf("FormatTrace missing queue wait:\n%s", out)
	}
	h := reg.Histogram("aqp_serve_queue_wait_seconds", "", obs.LatencyBuckets)
	if h.Count() != 1 {
		t.Fatalf("queue-wait histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.005 {
		t.Fatalf("queue-wait histogram sum = %vs, want >= 0.005", h.Sum())
	}
}

// TestConcurrentSubmit floods the server well past its queue bound and
// checks the accounting: every query is admitted, rejected, or answered;
// admissions respect MaxInFlight; the server is quiescent at the end.
func TestConcurrentSubmit(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, core.Config{Seed: 11, Workers: 2})
	s := New(eng, Config{MaxInFlight: 3, MaxQueue: 4, Metrics: reg})
	const clients = 24
	var ok, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(),
				"SELECT AVG(Price), SUM(Price) FROM Orders WHERE Price > 5")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no query succeeded")
	}
	if ok+rejected != clients {
		t.Fatalf("accounting: ok=%d rejected=%d of %d", ok, rejected, clients)
	}
	if s.InFlight() != 0 || s.Queued() != 0 {
		t.Errorf("not quiescent: inflight=%d queued=%d", s.InFlight(), s.Queued())
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after quiesce: %v", err)
	}
}
