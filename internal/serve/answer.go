package serve

import (
	"encoding/json"
	"math"
	"strconv"

	"repro/internal/core"
)

// Transport-neutral answer encoding, shared by the HTTP/JSON API and the
// MySQL wire listener (internal/wire). Both front ends must render the
// engine's answers so that a client parsing them back recovers the exact
// float64 bits core.Run produced — the end-to-end equality tests pin this.
// strconv's shortest round-trip formatting ('g', precision -1) guarantees
// it for finite values; NaN and ±Inf (legal RelErr values: "none"
// technique, zero-centered estimates) get explicit spellings that
// strconv.ParseFloat accepts back.

// FormatF64 renders a float64 in shortest round-trip form: ParseFloat of
// the result returns the identical bits. Non-finite values render as
// "NaN", "+Inf", "-Inf".
func FormatF64(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// F64 is a float64 that survives JSON: finite values marshal as shortest
// round-trip numbers, non-finite values as the quoted strings "NaN",
// "+Inf", "-Inf" (encoding/json rejects bare non-finite numbers).
// Unmarshal accepts both forms.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(FormatF64(v))
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(b) > 0 && b[0] == '"' {
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*f = F64(v)
	return nil
}

// Verdict canonicalizes one aggregate's diagnostic outcome for transport:
// "accept" when the runtime diagnostic passed (or was inapplicable),
// "reject" when it refused error estimation — matching the event log's
// verdict vocabulary. Exactness travels separately (AggResult.Exact, the
// wire _exact column): a rejected aggregate that fell back to exact
// execution reports verdict=reject AND exact=true.
func Verdict(a core.AggAnswer) string {
	if !a.DiagnosticOK {
		return "reject"
	}
	return "accept"
}

// AggResult is one aggregate of a query response: the estimate, its α
// confidence interval, the relative error bound, the estimation technique
// and the diagnostic verdict.
type AggResult struct {
	Name      string `json:"name"`
	Estimate  F64    `json:"estimate"`
	Lo        F64    `json:"lo"`
	Hi        F64    `json:"hi"`
	RelErr    F64    `json:"rel_err"`
	Technique string `json:"technique"`
	Verdict   string `json:"verdict"`
	Reason    string `json:"reason,omitempty"`
	Exact     bool   `json:"exact,omitempty"`
}

// GroupResult is one group's aggregates.
type GroupResult struct {
	Key  string      `json:"key,omitempty"`
	Aggs []AggResult `json:"aggs"`
}

// QueryResponse is the HTTP API's answer body. The float fields round-trip
// bit-exactly (see F64).
type QueryResponse struct {
	SQL            string        `json:"sql"`
	Groups         []GroupResult `json:"groups"`
	SampleRows     int           `json:"sample_rows,omitempty"`
	PopulationRows int           `json:"population_rows,omitempty"`
	BootstrapKUsed int           `json:"bootstrap_k_used,omitempty"`
	SharedScan     bool          `json:"shared_scan,omitempty"`
	FellBack       bool          `json:"fell_back,omitempty"`
	ElapsedMs      float64       `json:"elapsed_ms"`
	// TraceID is the query's W3C trace ID, set by the transport (not by
	// EncodeAnswer): the join key into /debug/queries, the event log, the
	// durable history, and any exported spans.
	TraceID string `json:"trace_id,omitempty"`
}

// EncodeAnswer flattens an engine answer into its transport form.
func EncodeAnswer(ans *core.Answer) *QueryResponse {
	resp := &QueryResponse{
		SQL:            ans.SQL,
		SampleRows:     ans.SampleRows,
		PopulationRows: ans.PopulationRows,
		BootstrapKUsed: ans.BootstrapKUsed,
		SharedScan:     ans.SharedScan,
		FellBack:       ans.FellBack(),
		ElapsedMs:      float64(ans.Elapsed) / 1e6,
	}
	for _, g := range ans.Groups {
		gr := GroupResult{Key: g.Key}
		for _, a := range g.Aggs {
			gr.Aggs = append(gr.Aggs, AggResult{
				Name:      a.Name,
				Estimate:  F64(a.Estimate),
				Lo:        F64(a.ErrorBar.Lo()),
				Hi:        F64(a.ErrorBar.Hi()),
				RelErr:    F64(a.RelErr),
				Technique: a.Technique,
				Verdict:   Verdict(a),
				Reason:    a.DiagnosticReason,
				Exact:     a.Exact,
			})
		}
		resp.Groups = append(resp.Groups, gr)
	}
	return resp
}
