// Package serve is the admission-controlled front end for a concurrent AQP
// engine: a bounded number of queries execute at once, excess arrivals wait
// in a strict-FIFO queue (or are rejected when the queue is full), every
// admitted query gets a deadline and a resample budget, and shutdown drains
// in-flight work before returning. The paper's premise — approximations
// with error bars exist to keep interactive latency predictable — only
// holds if the serving layer also bounds queueing and per-query work; this
// package is that bound.
//
// Concurrency-safety rests on the engine invariants proven by the core
// tests: Engine.Run is safe for concurrent use and produces bit-identical
// answers regardless of interleaving, because all randomness derives from
// (seed, stream) pairs owned by the query.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/history"
)

// Rejection and lifecycle errors. Both are permanent for the submitted
// query; callers distinguish them from cancellation via errors.Is.
var (
	// ErrQueueFull reports that the wait queue was at capacity on arrival.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrShuttingDown reports that the server no longer admits queries.
	ErrShuttingDown = errors.New("serve: shutting down")
)

// Classify maps a Submit error to a transport-neutral rejection code, so
// the HTTP and MySQL-wire front ends turn the same admission outcome into
// the same client-visible error class instead of an abrupt connection
// reset. retryable marks load-shedding outcomes a client should back off
// and retry; "bad_query" covers everything the engine itself refused
// (parse errors, unknown tables, ...).
func Classify(err error) (code string, retryable bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, ErrQueueFull):
		return "queue_full", true
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down", true
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", false
	case errors.Is(err, context.Canceled):
		return "cancelled", false
	default:
		return "bad_query", false
	}
}

// Config tunes a Server.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (0 = 4).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot (0 = 16;
	// negative = no queue, reject immediately when saturated).
	MaxQueue int
	// Timeout is the per-query deadline applied on admission, layered
	// under whatever deadline the caller's context already carries
	// (0 = none).
	Timeout time.Duration
	// MaxBootstrapK caps each query's resample count below the engine
	// default — the per-query work budget (0 = engine default).
	MaxBootstrapK int
	// MaxBatch enables inter-query shared-scan batching: admitted queries
	// targeting the same (table, sample) — per core.Engine.BatchKey — are
	// grouped and executed with ONE physical pass (exec.RunShared), up to
	// MaxBatch queries per group (0 or 1 = batching off). Answers are
	// bit-identical to unbatched execution. Each batched query still holds
	// its own execution slot, so size MaxInFlight >= MaxBatch to form full
	// batches.
	MaxBatch int
	// BatchHold is the group-commit window: how long the first query of a
	// forming batch waits for same-key arrivals before executing (0 =
	// 500µs). The window closes early when the batch fills. This bounds
	// the latency cost of batching at BatchHold per query.
	BatchHold time.Duration
	// Metrics, when non-nil, receives the serving gauges and counters.
	Metrics *obs.Registry
	// History, when non-nil, receives a durable RejectRecord for every
	// query refused admission. Rejected queries never reach the engine's
	// finishQuery path, so this hook is the only place availability SLOs
	// can learn about them.
	History *history.Store
	// Alerts, when non-nil, receives admission-health alerts: a
	// reject-spike alert (source "serve", kind "reject_spike", key =
	// rejection reason) when RejectSpikeThreshold rejections of one reason
	// land inside RejectSpikeWindow, and a queue-saturation alert (kind
	// "queue_saturation") whenever an arrival is turned away because the
	// wait queue is full. Alerts resolve as admissions resume and the
	// reject windows drain. The server never blocks on the bus.
	Alerts *alert.Bus
	// RejectSpikeWindow is the sliding window for reject-spike detection
	// (0 = 10s).
	RejectSpikeWindow time.Duration
	// RejectSpikeThreshold is how many same-reason rejections inside the
	// window raise the alert (0 = 8). The alert resolves when the window
	// drains below half the threshold.
	RejectSpikeThreshold int
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 4
	}
	return c.MaxInFlight
}

func (c Config) maxQueue() int {
	if c.MaxQueue == 0 {
		return 16
	}
	if c.MaxQueue < 0 {
		return 0
	}
	return c.MaxQueue
}

func (c Config) batchHold() time.Duration {
	if c.BatchHold <= 0 {
		return 500 * time.Microsecond
	}
	return c.BatchHold
}

func (c Config) rejectSpikeWindow() time.Duration {
	if c.RejectSpikeWindow <= 0 {
		return 10 * time.Second
	}
	return c.RejectSpikeWindow
}

func (c Config) rejectSpikeThreshold() int {
	if c.RejectSpikeThreshold <= 0 {
		return 8
	}
	return c.RejectSpikeThreshold
}

// Server serializes admission to a shared engine. The zero value is not
// usable; construct with New.
type Server struct {
	eng *core.Engine
	cfg Config

	mu       sync.Mutex
	inflight int
	queue    []chan error // FIFO waiters; receive nil (slot granted) or a rejection
	draining bool
	drained  chan struct{} // closed when draining and inflight hits zero
	batches  map[string]*batchGroup

	gInflight  *obs.Gauge
	gQueued    *obs.Gauge
	admitted    *obs.Counter
	cancelled   *obs.Counter
	cacheServed *obs.Counter
	hQueueWait  *obs.Histogram

	batchesRun     *obs.Counter
	batchedQueries *obs.Counter
	hBatchSize     *obs.Histogram

	// Reject-spike tracking for the alert bus. Guarded by amu, never by
	// s.mu: all bus calls happen outside the admission lock so a slow
	// alert sink can never stall admission.
	amu     sync.Mutex
	rejects map[string][]time.Time // per-reason reject times inside the window
}

// New returns a server fronting the engine.
func New(eng *core.Engine, cfg Config) *Server {
	reg := cfg.Metrics
	return &Server{
		eng:     eng,
		cfg:     cfg,
		drained: make(chan struct{}),
		rejects: make(map[string][]time.Time),
		gInflight: reg.Gauge("aqp_serve_inflight",
			"Queries currently executing."),
		gQueued: reg.Gauge("aqp_serve_queued",
			"Queries waiting for an execution slot."),
		admitted: reg.Counter("aqp_serve_admitted_total",
			"Queries granted an execution slot."),
		cancelled: reg.Counter("aqp_serve_cancelled_total",
			"Admitted queries that ended cancelled or past deadline."),
		cacheServed: reg.Counter("aqp_serve_answer_cache_total",
			"Queries answered from the engine's answer cache before admission."),
		hQueueWait: reg.Histogram("aqp_serve_queue_wait_seconds",
			"Time admitted queries spent waiting for an execution slot.",
			obs.LatencyBuckets),
		batchesRun: reg.Counter("aqp_serve_batches_total",
			"Shared-scan batches executed."),
		batchedQueries: reg.Counter("aqp_serve_batched_queries_total",
			"Queries answered from a shared-scan batch."),
		hBatchSize: reg.Histogram("aqp_serve_batch_size",
			"Queries per executed shared-scan batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
	}
}

func (s *Server) reject(reason string) {
	s.cfg.Metrics.Counter("aqp_serve_rejected_total",
		"Queries refused admission, by reason.", "reason", reason).Inc()
	s.cfg.History.AppendReject(reason)
	s.noteReject(reason)
}

// noteReject feeds one rejection into the alert bus: it slides the
// per-reason window forward and raises reject_spike when the window
// crosses the threshold, plus queue_saturation on every queue_full turn
// -away. Callers never hold s.mu here (every reject() call site runs
// after unlock), so bus sinks cannot stall admission.
func (s *Server) noteReject(reason string) {
	if s.cfg.Alerts == nil {
		return
	}
	now := time.Now()
	threshold := s.cfg.rejectSpikeThreshold()
	s.amu.Lock()
	w := append(s.rejects[reason], now)
	w = pruneBefore(w, now.Add(-s.cfg.rejectSpikeWindow()))
	s.rejects[reason] = w
	n := len(w)
	s.amu.Unlock()
	if n >= threshold {
		s.cfg.Alerts.Raise(alert.Alert{
			Source:   "serve",
			Kind:     "reject_spike",
			Key:      reason,
			Severity: alert.SeverityWarning,
			Message: fmt.Sprintf("admission rejected %d queries (%s) within %s",
				n, reason, s.cfg.rejectSpikeWindow()),
			Observed: float64(n),
			Expected: float64(threshold),
		})
	}
	if reason == "queue_full" {
		s.cfg.Alerts.Raise(alert.Alert{
			Source:   "serve",
			Kind:     "queue_saturation",
			Key:      "queue",
			Severity: alert.SeverityWarning,
			Message: fmt.Sprintf("wait queue at capacity (%d); arrivals are being turned away",
				s.cfg.maxQueue()),
			Observed: float64(s.cfg.maxQueue()),
			Expected: float64(s.cfg.maxQueue()),
		})
	}
}

// noteAdmit is noteReject's counterpart on the admission path: it drains
// stale entries from every reject window and resolves alerts whose
// condition has passed (window below half threshold; queue below half
// capacity). Called with no locks held.
func (s *Server) noteAdmit() {
	if s.cfg.Alerts == nil {
		return
	}
	cut := time.Now().Add(-s.cfg.rejectSpikeWindow())
	half := s.cfg.rejectSpikeThreshold() / 2
	var calm []string
	s.amu.Lock()
	for reason, w := range s.rejects {
		w = pruneBefore(w, cut)
		s.rejects[reason] = w
		if len(w) <= half {
			calm = append(calm, reason)
		}
	}
	s.amu.Unlock()
	for _, reason := range calm {
		s.cfg.Alerts.Resolve("serve", "reject_spike", reason)
	}
	if s.Queued() <= s.cfg.maxQueue()/2 {
		s.cfg.Alerts.Resolve("serve", "queue_saturation", "queue")
	}
}

// pruneBefore drops timestamps older than cut from the front of a
// time-ordered slice.
func pruneBefore(w []time.Time, cut time.Time) []time.Time {
	i := 0
	for i < len(w) && w[i].Before(cut) {
		i++
	}
	return w[i:]
}

// Submit answers one query under admission control: it waits for an
// execution slot (strict FIFO among waiters), applies the configured
// deadline and resample budget, and runs the query on the shared engine.
// The caller's ctx governs both the wait and the execution; a query
// cancelled while queued leaves the queue without consuming a slot.
func (s *Server) Submit(ctx context.Context, query string) (*core.Answer, error) {
	arrived := time.Now()
	// Answer reuse happens BEFORE admission: a replayed answer does no
	// physical work, so it must not queue behind — or steal a slot from —
	// queries that do. The engine keys the lookup on its catalog
	// generation, so a replay is always as fresh as a re-execution.
	if s.eng != nil {
		if ans, ok := s.eng.CachedAnswer(ctx, query, s.cfg.MaxBootstrapK); ok {
			s.cacheServed.Inc()
			return ans, nil
		}
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	wait := time.Since(arrived)
	s.hQueueWait.Observe(wait.Seconds())
	s.admitted.Inc()
	s.noteAdmit()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	ans, err := s.run(ctx, query, wait)
	if obs.Outcome(err) == "cancelled" {
		s.cancelled.Inc()
	}
	return ans, err
}

// run executes one admitted query: through the shared-scan batcher when
// batching is enabled and the query is batchable, solo otherwise.
func (s *Server) run(ctx context.Context, query string, wait time.Duration) (*core.Answer, error) {
	if s.cfg.MaxBatch > 1 && s.eng != nil {
		if key, ok := s.eng.BatchKey(query); ok {
			return s.submitBatched(ctx, key, query, wait)
		}
	}
	return s.eng.RunWithOptions(ctx, query, core.RunOptions{
		BootstrapK: s.cfg.MaxBootstrapK,
		QueueWait:  wait,
	})
}

// acquire blocks until an execution slot is free, the queue overflows, ctx
// is done, or the server drains. On nil return the caller holds a slot and
// must release it.
func (s *Server) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject("shutting_down")
		return ErrShuttingDown
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		s.reject("cancelled")
		return fmt.Errorf("serve: while admitting: %w", err)
	}
	if s.inflight < s.cfg.maxInFlight() {
		s.inflight++
		s.gInflight.Set(int64(s.inflight))
		s.mu.Unlock()
		return nil
	}
	if len(s.queue) >= s.cfg.maxQueue() {
		s.mu.Unlock()
		s.reject("queue_full")
		return ErrQueueFull
	}
	// Buffered so release/Shutdown never block handing us the verdict even
	// if we have already given up on ctx.Done.
	w := make(chan error, 1)
	s.queue = append(s.queue, w)
	s.gQueued.Set(int64(len(s.queue)))
	s.mu.Unlock()

	select {
	case err := <-w:
		if err != nil {
			s.reject("shutting_down")
		}
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.gQueued.Set(int64(len(s.queue)))
				s.mu.Unlock()
				s.reject("cancelled")
				return fmt.Errorf("serve: while queued: %w", ctx.Err())
			}
		}
		s.mu.Unlock()
		// Not in the queue anymore: a verdict is already in w.
		if err := <-w; err != nil {
			s.reject("shutting_down")
			return err
		}
		// The slot was granted in the same instant the caller gave up;
		// hand it back and report the cancellation.
		s.release()
		s.reject("cancelled")
		return fmt.Errorf("serve: while queued: %w", ctx.Err())
	}
}

// release frees a slot: the oldest waiter inherits it directly (no
// decrement/increment window another arrival could steal through, which
// would break FIFO), otherwise in-flight drops and a drain may complete.
func (s *Server) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining && len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.gQueued.Set(int64(len(s.queue)))
		w <- nil
		return
	}
	s.inflight--
	s.gInflight.Set(int64(s.inflight))
	if s.draining && s.inflight == 0 {
		close(s.drained)
	}
}

// Shutdown stops admitting queries, fails all waiters with
// ErrShuttingDown (each waiter's rejection is metered and recorded in the
// history store, so availability SLOs see drained queries), and waits for
// in-flight queries to finish. It returns ctx.Err() if the drain outlives
// ctx; in-flight queries keep their own contexts and are not
// force-cancelled — pair Shutdown with a per-query Timeout to bound the
// drain. Shutdown is idempotent: concurrent and repeated calls all wait
// for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, w := range s.queue {
			w <- ErrShuttingDown
		}
		s.queue = nil
		s.gQueued.Set(0)
	}
	idle := s.inflight == 0
	s.mu.Unlock()
	if idle {
		return nil
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Draining reports whether Shutdown has begun: the server no longer
// admits queries. Front ends use it to flip health checks before refusing
// traffic.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of currently executing queries.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Queued returns the number of queries waiting for a slot.
func (s *Server) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
