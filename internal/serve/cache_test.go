package serve

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestSubmitAnswerCacheSkipsAdmission pins the serve-layer reuse contract:
// a query whose answer is already cached replays before admission, so it
// neither consumes an execution slot nor can be rejected by a full queue.
func TestSubmitAnswerCacheSkipsAdmission(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 8, CacheBytes: 4 << 20})
	reg := obs.NewRegistry()
	s := New(eng, Config{MaxInFlight: 1, MaxQueue: -1, Metrics: reg})
	defer s.Shutdown(context.Background())

	const q = "SELECT AVG(Price) FROM Orders GROUP BY Region"
	warm, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cached {
		t.Fatal("first submission marked Cached")
	}

	// Occupy the only execution slot; with no queue, any query that needs
	// admission is now rejected outright.
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.release()
	if _, err := s.Submit(context.Background(), "SELECT SUM(Price) FROM Orders"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fresh query under a held slot: err = %v, want ErrQueueFull", err)
	}

	got, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatalf("cached query under a held slot: %v", err)
	}
	if !got.Cached {
		t.Fatal("repeat submission not served from the answer cache")
	}
	for i := range got.Groups {
		for j := range got.Groups[i].Aggs {
			g, w := got.Groups[i].Aggs[j], warm.Groups[i].Aggs[j]
			if g.Estimate != w.Estimate {
				t.Errorf("group %d agg %d: replayed estimate %v, want %v", i, j, g.Estimate, w.Estimate)
			}
		}
	}
	if n := reg.Counter("aqp_serve_answer_cache_total", "").Value(); n != 1 {
		t.Errorf("aqp_serve_answer_cache_total = %d, want 1", n)
	}
}
