// Package cluster is a cost-model simulator of the distributed execution
// environment the paper evaluates on: 100 EC2 m1.large machines running a
// Spark/Shark-style engine over 17 TB of data with ~600 GB of aggregate
// RAM cache (§7). It converts the work a query plan performs — full-sample
// scans, small diagnostic subqueries, per-row CPU, weight draws — into
// simulated wall-clock seconds, reproducing the *shape* of the paper's
// systems results:
//
//   - the naive UNION-ALL pipeline takes minutes while the consolidated
//     single-scan pipeline takes seconds (Figs. 7 vs 9);
//   - end-to-end latency is U-shaped in the degree of parallelism with an
//     optimum around 20 machines (Fig. 8(c)): scan time shrinks with more
//     machines but serialized task launch and many-to-one partial-aggregate
//     collection grow linearly;
//   - latency is U-shaped in the fraction of inputs cached with an optimum
//     around 30–40% (Fig. 8(d)): cache hits speed scans until input cache
//     crowds out execution memory and intermediate data spills;
//   - straggler mitigation (10% speculative clones, don't wait for the
//     slowest 10%) shaves the heavy tail off wave completion (§6.3).
//
// This simulator is the documented substitution for the proprietary EC2
// testbed (see DESIGN.md): absolute seconds are calibrated only loosely,
// orderings and crossover locations are the reproduction target.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Config describes the simulated cluster and its tuning knobs.
type Config struct {
	// Machines is the number of machines the query may use — the Fig. 8(c)
	// degree-of-parallelism knob.
	Machines int
	// StorageMachines is the number of machines the samples (and the RAM
	// cache) are spread across; it stays fixed while Machines varies.
	// Zero means "same as Machines".
	StorageMachines int
	// SlotsPerMachine is the number of parallel task slots per machine
	// (m1.large: 2 cores).
	SlotsPerMachine int

	// DiskMBps and MemMBps are per-machine scan bandwidths.
	DiskMBps float64
	MemMBps  float64

	// CacheFraction is the fraction of stored sample bytes kept in the
	// cluster's RAM cache (the Fig. 8(d) knob). Raising it improves scan
	// hit ratio but shrinks execution memory.
	CacheFraction float64
	// RAMPerMachineMB is the usable memory per machine.
	RAMPerMachineMB float64
	// StoredSampleMB is the total size of all stored samples competing
	// for cache (the denominator of the hit ratio).
	StoredSampleMB float64

	// TaskOverheadMs is the fixed cost a task pays before useful work
	// (JVM/executor dispatch in the real system).
	TaskOverheadMs float64
	// TaskLaunchMs is the serialized per-task scheduling cost at the
	// driver.
	TaskLaunchMs float64
	// PartialAggMs is the serialized collector-side cost of receiving and
	// merging ONE partial aggregate column from ONE task. The consolidated
	// scan ships 1+K partials per task, so this many-to-one step is what
	// punishes excessive parallelism (Fig. 8(c)).
	PartialAggMs float64
	// CollectorPartialMs prices one batched absolute partial (the
	// consolidated diagnostic's per-subsample results), which arrive
	// pre-aggregated and are far cheaper than per-task columns.
	CollectorPartialMs float64
	// SubqueryOverheadMs is the serialized driver cost of planning and
	// dispatching one subquery (the §5.2 naive rewrite pays it tens of
	// thousands of times).
	SubqueryOverheadMs float64

	// CPURowNanos is the per-row per-operation processing cost.
	CPURowNanos float64
	// WeightDrawNanos is the cost of one Poisson weight draw.
	WeightDrawNanos float64

	// TargetPartitionMB bounds how finely input splits into tasks.
	TargetPartitionMB float64

	// StragglerProb is the probability a task straggles; a straggling
	// task's duration is multiplied by 1+Exp(1)*StragglerFactor.
	StragglerProb   float64
	StragglerFactor float64
	// Mitigation enables §6.3: 10% speculative duplicates, wave completes
	// at the 90th percentile of task finish times instead of the max.
	Mitigation bool
}

// Default returns the calibration used for the paper-scale experiments:
// 100 m1.large machines, 600 GB aggregate RAM over ~600 GB of stored
// samples, Spark-era scheduling constants.
func Default() Config {
	return Config{
		Machines:           100,
		StorageMachines:    100,
		SlotsPerMachine:    2,
		DiskMBps:           200,
		MemMBps:            1500,
		CacheFraction:      0.35,
		RAMPerMachineMB:    6000,
		StoredSampleMB:     600000,
		TaskOverheadMs:     45,
		TaskLaunchMs:       2.5,
		PartialAggMs:       0.3,
		CollectorPartialMs: 0.08,
		SubqueryOverheadMs: 18,
		CPURowNanos:        1.5,
		WeightDrawNanos:    1.5,
		TargetPartitionMB:  64,
		StragglerProb:      0.05,
		StragglerFactor:    4,
		Mitigation:         true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Machines < 1 || c.SlotsPerMachine < 1 {
		return fmt.Errorf("cluster: need at least one machine and slot")
	}
	if c.DiskMBps <= 0 || c.MemMBps <= 0 {
		return fmt.Errorf("cluster: bandwidths must be positive")
	}
	if c.CacheFraction < 0 || c.CacheFraction > 1 {
		return fmt.Errorf("cluster: cache fraction %v outside [0,1]", c.CacheFraction)
	}
	if c.TargetPartitionMB <= 0 {
		return fmt.Errorf("cluster: target partition size must be positive")
	}
	return nil
}

// Cluster is a simulated cluster ready to cost workloads.
type Cluster struct {
	cfg Config
}

// New validates the configuration and returns a Cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg}, nil
}

// Config returns the cluster's configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

func (cl *Cluster) slots() int { return cl.cfg.Machines * cl.cfg.SlotsPerMachine }

// tasksFor returns how many tasks a scan of mb input splits into: one per
// target partition, capped at the cluster's slot count (a single wave).
func (cl *Cluster) tasksFor(mb float64) int {
	tasks := int(math.Ceil(mb / cl.cfg.TargetPartitionMB))
	if tasks < 1 {
		tasks = 1
	}
	if tasks > cl.slots() {
		tasks = cl.slots()
	}
	return tasks
}

// storageMachines returns the fleet the samples are spread across.
func (cl *Cluster) storageMachines() int {
	if cl.cfg.StorageMachines > 0 {
		return cl.cfg.StorageMachines
	}
	return cl.cfg.Machines
}

// hitRatio returns the fraction of scanned bytes served from RAM cache.
func (cl *Cluster) hitRatio() float64 {
	cacheMB := cl.cfg.CacheFraction * cl.cfg.RAMPerMachineMB * float64(cl.storageMachines())
	if cl.cfg.StoredSampleMB <= 0 {
		return 1
	}
	h := cacheMB / cl.cfg.StoredSampleMB
	if h > 1 {
		h = 1
	}
	return h
}

// scanSecPerMB is the per-machine time to scan one MB at the current hit
// ratio.
func (cl *Cluster) scanSecPerMB() float64 {
	h := cl.hitRatio()
	return h/cl.cfg.MemMBps + (1-h)/cl.cfg.DiskMBps
}

// execMemPerMachineMB is the memory left for execution after the input
// cache takes its share.
func (cl *Cluster) execMemPerMachineMB() float64 {
	return cl.cfg.RAMPerMachineMB * (1 - cl.cfg.CacheFraction)
}

// spillSec charges the per-task cost of spilling intermediate data (weight
// columns, resample aggregation state) that exceeds execution memory:
// spilled bytes are written and re-read at disk bandwidth, shared among
// the machine's slots.
func (cl *Cluster) spillSec(intermediateMBPerMachine float64) float64 {
	excess := intermediateMBPerMachine - cl.execMemPerMachineMB()
	if excess <= 0 {
		return 0
	}
	return 2 * excess / cl.cfg.DiskMBps / float64(cl.cfg.SlotsPerMachine)
}

// Subquery describes one subquery's work: a scan of Bytes across the
// cluster plus RowOps per scanned row of CPU.
type Subquery struct {
	Count  int     // how many identical subqueries of this shape run
	MB     float64 // input scanned per subquery
	Rows   int64   // rows scanned per subquery
	RowOps float64 // CPU operations per row (1 = plain aggregate)
	// IntermediateMBPerMachine sizes this subquery's in-flight state for
	// the spill model (only the consolidated multi-weight scan has a
	// meaningful value).
	IntermediateMBPerMachine float64
	// Fanout multiplies the partial-aggregate collection cost (GROUP BY
	// result width).
	Fanout int
}

// Workload is everything one query pipeline asks of the cluster.
type Workload struct {
	Subqueries []Subquery
	// ExtraCPURowOps is computation not attached to any scan (e.g. the
	// consolidated diagnostic's subsample math); it parallelizes across
	// all slots.
	ExtraCPURowOps float64
	// ExtraWeightDraws counts Poisson draws performed outside scans.
	ExtraWeightDraws float64
	// CollectorMB and CollectorCols charge the many-to-one collection of
	// extra partial-aggregate columns piggybacking on a scan of
	// CollectorMB input: each of that scan's tasks ships CollectorCols
	// additional partials to the collector. The consolidated pipeline's
	// error-estimation component uses this to account for its share of
	// result collection without owning a scan.
	CollectorMB   float64
	CollectorCols float64
	// CollectorPartials charges an absolute number of partial results
	// arriving at the collector, for work whose partials are not
	// replicated across every task (the consolidated diagnostic's
	// per-subsample estimates, which live in the few tasks holding each
	// subsample).
	CollectorPartials float64
}

// Simulate returns the simulated wall-clock seconds to run the workload.
// src drives straggler sampling; pass a query-specific stream for
// reproducibility.
func (cl *Cluster) Simulate(src *rng.Source, w Workload) float64 {
	slots := float64(cl.slots())
	scanPerMB := cl.scanSecPerMB()

	var driverSec float64   // serialized: subquery dispatch + task launch + partial collection
	var taskWorkSec float64 // parallelizable task-seconds
	var maxWaveSec float64  // no workload finishes before its longest wave

	for _, sq := range w.Subqueries {
		if sq.Count <= 0 {
			continue
		}
		fanout := sq.Fanout
		if fanout < 1 {
			fanout = 1
		}
		tasks := cl.tasksFor(sq.MB)
		perTaskMB := sq.MB / float64(tasks)
		perTaskRows := float64(sq.Rows) / float64(tasks)
		base := cl.cfg.TaskOverheadMs/1e3 +
			perTaskMB*scanPerMB +
			perTaskRows*sq.RowOps*cl.cfg.CPURowNanos/1e9 +
			cl.spillSec(sq.IntermediateMBPerMachine)

		// Straggler tail for one representative wave of this shape.
		tail := cl.waveTail(src, tasks)
		wave := base * tail
		if wave > maxWaveSec {
			maxWaveSec = wave
		}

		n := float64(sq.Count)
		taskWorkSec += n * float64(tasks) * base
		driverSec += n * (cl.cfg.SubqueryOverheadMs/1e3 +
			float64(tasks)*(cl.cfg.TaskLaunchMs+cl.cfg.PartialAggMs*float64(fanout))/1e3)
	}

	taskWorkSec += (w.ExtraCPURowOps*cl.cfg.CPURowNanos +
		w.ExtraWeightDraws*cl.cfg.WeightDrawNanos) / 1e9

	if w.CollectorCols > 0 && w.CollectorMB > 0 {
		driverSec += float64(cl.tasksFor(w.CollectorMB)) * w.CollectorCols *
			cl.cfg.PartialAggMs / 1e3
	}
	driverSec += w.CollectorPartials * cl.cfg.CollectorPartialMs / 1e3

	execSec := taskWorkSec / slots
	if execSec < maxWaveSec {
		execSec = maxWaveSec
	}
	return driverSec + execSec
}

// waveTail samples the wave-completion multiplier for a wave of n tasks:
// the max (or, under mitigation, the 90th percentile) of per-task
// inflation factors.
func (cl *Cluster) waveTail(src *rng.Source, n int) float64 {
	if n <= 0 {
		return 1
	}
	if n > 4096 {
		n = 4096
	}
	mults := make([]float64, n)
	for i := range mults {
		m := 1.0
		if src.Float64() < cl.cfg.StragglerProb {
			m = 1 + src.ExpFloat64()*cl.cfg.StragglerFactor
		}
		mults[i] = m
	}
	if !cl.cfg.Mitigation {
		return max64(mults)
	}
	// Speculative duplicates let the wave complete at the 90th
	// percentile.
	sort.Float64s(mults)
	idx := int(0.9*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	return mults[idx]
}

func max64(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
