package cluster

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBreakdownObserve(t *testing.T) {
	reg := obs.NewRegistry()
	b := Breakdown{QuerySec: 1.5, ErrorSec: 0.5, DiagSec: 2.0}
	b.Observe(reg, 10*time.Millisecond)

	for _, comp := range []string{"query", "error", "diag", "total"} {
		h := reg.Histogram("aqp_cluster_sim_seconds", "", obs.SimSecondsBuckets,
			"component", comp)
		if h.Count() != 1 {
			t.Errorf("component %q observed %d times, want 1", comp, h.Count())
		}
	}
	total := reg.Histogram("aqp_cluster_sim_seconds", "", obs.SimSecondsBuckets,
		"component", "total")
	if total.Sum() != 4.0 {
		t.Errorf("total sum = %v, want 4.0", total.Sum())
	}
	ratio := reg.Histogram("aqp_cluster_sim_wall_ratio", "", obs.RatioBuckets)
	if ratio.Count() != 1 {
		t.Fatalf("ratio observed %d times, want 1", ratio.Count())
	}
	if got := ratio.Sum(); got < 399 || got > 401 {
		t.Errorf("sim/wall ratio = %v, want ~400 (4s simulated / 10ms wall)", got)
	}

	// Nil registry and zero wall time must be safe no-ops.
	b.Observe(nil, time.Second)
	b.Observe(reg, 0)
	if ratio.Count() != 1 {
		t.Error("zero wall time must not observe a ratio")
	}
}
