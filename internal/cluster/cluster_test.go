package cluster

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// paperShape is a typical QSet query: a 20 GB / 100M-row sample, 50%
// selectivity, K=100 bootstrap, the paper's diagnostic ladder.
func paperShape(consolidated, pushed, closedForm bool) QueryShape {
	k := 100
	if closedForm {
		k = 0 // QSet-1: error bars come from closed forms, not resamples
	}
	return QueryShape{
		SampleMB:     20000,
		SampleRows:   100e6,
		Selectivity:  0.5,
		BootstrapK:   k,
		DiagSizes:    []int{250000, 500000, 1000000}, // ~50/100/200MB at 200B/row
		DiagP:        100,
		ClosedForm:   closedForm,
		Consolidated: consolidated,
		Pushdown:     pushed,
		Fanout:       1,
	}
}

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestConfigValidation(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Machines = 0 },
		func(c *Config) { c.SlotsPerMachine = 0 },
		func(c *Config) { c.DiskMBps = 0 },
		func(c *Config) { c.MemMBps = -1 },
		func(c *Config) { c.CacheFraction = 1.5 },
		func(c *Config) { c.TargetPartitionMB = 0 },
	}
	for i, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cl := mustCluster(t, Default())
	s := paperShape(true, true, true)
	a := cl.SimulateBreakdown(rng.New(1), s)
	b := cl.SimulateBreakdown(rng.New(1), s)
	if a != b {
		t.Fatal("same seed produced different simulated times")
	}
}

func TestOptimizedPipelineIsInteractive(t *testing.T) {
	// The headline: the fully optimized pipeline answers in a few
	// seconds (Fig. 9), for both closed-form and bootstrap queries.
	cl := mustCluster(t, Default())
	for _, closedForm := range []bool{true, false} {
		s := paperShape(true, true, closedForm)
		b := cl.SimulateBreakdown(rng.New(2), s)
		if b.Total() > 12 {
			t.Errorf("optimized total (closedForm=%v) = %.1fs, want interactive (<12s)",
				closedForm, b.Total())
		}
		if b.Total() < 0.05 {
			t.Errorf("optimized total = %.3fs implausibly fast", b.Total())
		}
	}
}

func TestNaivePipelineTakesMinutes(t *testing.T) {
	// Fig. 7: the §5.2 rewrite takes minutes, dominated by diagnostics.
	cl := mustCluster(t, Default())
	s := paperShape(false, false, false) // QSet-2 flavour, bootstrap ξ
	b := cl.SimulateBreakdown(rng.New(3), s)
	if b.Total() < 60 {
		t.Errorf("naive bootstrap total = %.1fs, want minutes", b.Total())
	}
	if b.DiagSec < b.ErrorSec {
		t.Errorf("naive diagnostics (%.1fs) should dominate error estimation (%.1fs)",
			b.DiagSec, b.ErrorSec)
	}
}

func TestSpeedupShapesMatchFig8(t *testing.T) {
	// Fig. 8(a)/(b): plan optimizations speed up error estimation by
	// ~1-2x (QSet-1) vs 20-60x (QSet-2), and diagnostics by 5-20x vs
	// 20-100x.
	cl := mustCluster(t, Default())
	src := rng.New(4)

	// QSet-2 (bootstrap) speedups are much larger than QSet-1
	// (closed-form) speedups.
	naive2 := cl.SimulateBreakdown(src, paperShape(false, false, false))
	opt2 := cl.SimulateBreakdown(src, paperShape(true, true, false))
	naive1 := cl.SimulateBreakdown(src, paperShape(false, false, true))
	opt1 := cl.SimulateBreakdown(src, paperShape(true, true, true))

	errSpeedup2 := naive2.ErrorSec / opt2.ErrorSec
	errSpeedup1 := naive1.ErrorSec / opt1.ErrorSec
	diagSpeedup2 := naive2.DiagSec / opt2.DiagSec
	diagSpeedup1 := naive1.DiagSec / opt1.DiagSec

	if errSpeedup2 < 10 {
		t.Errorf("QSet-2 error-estimation speedup = %.1fx, want >= 10x", errSpeedup2)
	}
	if diagSpeedup2 < 20 {
		t.Errorf("QSet-2 diagnostics speedup = %.1fx, want >= 20x", diagSpeedup2)
	}
	if diagSpeedup1 < 2 {
		t.Errorf("QSet-1 diagnostics speedup = %.1fx, want >= 2x", diagSpeedup1)
	}
	// QSet-1 error bars come from closed forms in both plans, so the big
	// error-estimation wins belong to QSet-2 (Fig. 8(a) vs 8(b)).
	if errSpeedup2 < 2*errSpeedup1 {
		t.Errorf("bootstrap error estimation should gain far more than closed forms (%.1fx vs %.1fx)",
			errSpeedup2, errSpeedup1)
	}
}

func TestParallelismUShape(t *testing.T) {
	// Fig. 8(c): latency vs machine count is U-shaped with the optimum
	// at a moderate cluster size, not at the maximum.
	src := rng.New(5)
	s := paperShape(true, true, false)
	var times []float64
	machines := []int{5, 10, 20, 40, 80, 160}
	for _, m := range machines {
		cfg := Default()
		cfg.Machines = m
		cfg.StragglerProb = 0 // isolate the deterministic tradeoff
		cl := mustCluster(t, cfg)
		times = append(times, cl.SimulateBreakdown(src, s).Total())
	}
	best := 0
	for i, v := range times {
		if v < times[best] {
			best = i
		}
	}
	if best == 0 || best == len(times)-1 {
		t.Errorf("no interior optimum: times=%v (best=%d machines)", times, machines[best])
	}
	// The largest cluster must be measurably worse than the best.
	if times[len(times)-1] < times[best]*1.05 {
		t.Errorf("over-parallelization shows no penalty: %v", times)
	}
}

func TestCacheFractionUShape(t *testing.T) {
	// Fig. 8(d): latency vs cache fraction is U-shaped with the optimum
	// in the interior (paper: 30-40%).
	src := rng.New(6)
	s := paperShape(true, true, false)
	fractions := []float64{0, 0.2, 0.35, 0.6, 0.9}
	var times []float64
	for _, f := range fractions {
		cfg := Default()
		cfg.CacheFraction = f
		cfg.StragglerProb = 0
		cl := mustCluster(t, cfg)
		times = append(times, cl.SimulateBreakdown(src, s).Total())
	}
	best := 0
	for i, v := range times {
		if v < times[best] {
			best = i
		}
	}
	if best == 0 || best == len(times)-1 {
		t.Errorf("no interior cache optimum: fractions=%v times=%v", fractions, times)
	}
	if !(fractions[best] >= 0.2 && fractions[best] <= 0.6) {
		t.Errorf("cache optimum at %v, want within [0.2, 0.6]: %v", fractions[best], times)
	}
}

func TestStragglerMitigationHelps(t *testing.T) {
	s := paperShape(true, true, false)
	with := Default()
	with.Mitigation = true
	without := Default()
	without.Mitigation = false
	clWith := mustCluster(t, with)
	clWithout := mustCluster(t, without)
	// Average over several seeds: mitigation should win on average.
	var sumWith, sumWithout float64
	const trials = 30
	for i := uint64(0); i < trials; i++ {
		sumWith += clWith.SimulateBreakdown(rng.New(100+i), s).Total()
		sumWithout += clWithout.SimulateBreakdown(rng.New(100+i), s).Total()
	}
	if sumWith >= sumWithout {
		t.Errorf("mitigation did not help: %.1fs vs %.1fs", sumWith/trials, sumWithout/trials)
	}
}

func TestCacheHitSpeedsScans(t *testing.T) {
	cold := Default()
	cold.CacheFraction = 0
	cold.StragglerProb = 0
	hot := Default()
	hot.CacheFraction = 0.3
	hot.StragglerProb = 0
	// Pure scan workload (no intermediate state → no spill).
	w := Workload{Subqueries: []Subquery{{Count: 1, MB: 20000, Rows: 1e8, RowOps: 1}}}
	tCold := mustClusterT(t, cold).Simulate(rng.New(7), w)
	tHot := mustClusterT(t, hot).Simulate(rng.New(7), w)
	if tHot >= tCold {
		t.Errorf("cache did not speed scan: hot %.2fs vs cold %.2fs", tHot, tCold)
	}
}

func mustClusterT(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	return mustCluster(t, cfg)
}

func TestEmptyWorkloadIsFree(t *testing.T) {
	cl := mustCluster(t, Default())
	if got := cl.Simulate(rng.New(8), Workload{}); got != 0 {
		t.Errorf("empty workload cost %v", got)
	}
}

func TestWorkloadComponentsScaleWithK(t *testing.T) {
	cl := mustCluster(t, Default())
	small := paperShape(false, false, false)
	small.BootstrapK = 10
	big := paperShape(false, false, false)
	big.BootstrapK = 100
	src := rng.New(9)
	tSmall := cl.Simulate(src, small.ErrorEstimationWorkload())
	tBig := cl.Simulate(src, big.ErrorEstimationWorkload())
	ratio := tBig / tSmall
	if ratio < 5 || ratio > 15 {
		t.Errorf("naive error estimation should scale ~linearly with K: ratio %.1f", ratio)
	}
}

func TestPushdownReducesConsolidatedCost(t *testing.T) {
	cl := mustCluster(t, Default())
	src := rng.New(10)
	pushed := paperShape(true, true, false)
	pushed.Selectivity = 0.05 // highly selective filter
	unpushed := pushed
	unpushed.Pushdown = false
	tPushed := cl.Simulate(src, pushed.ErrorEstimationWorkload())
	tUnpushed := cl.Simulate(src, unpushed.ErrorEstimationWorkload())
	if tPushed >= tUnpushed {
		t.Errorf("pushdown did not pay off: %.3fs vs %.3fs", tPushed, tUnpushed)
	}
}

func TestConsolidatedIntermediateAccounting(t *testing.T) {
	cl := mustCluster(t, Default())
	s := paperShape(true, true, false)
	mb := cl.ConsolidatedIntermediateMB(s)
	if mb <= 0 {
		t.Error("consolidated plan should have intermediate state")
	}
	// Narrower rows mean more rows per partition and thus more in-flight
	// weight state.
	narrow := s
	narrow.SampleRows = 4 * s.SampleRows
	if cl.ConsolidatedIntermediateMB(narrow) <= mb {
		t.Error("narrow rows should increase in-flight weight state")
	}
	s.Consolidated = false
	if cl.ConsolidatedIntermediateMB(s) != 0 {
		t.Error("naive plan should have no consolidated intermediate state")
	}
	s.Consolidated = true
	s.BootstrapK = 0
	if cl.ConsolidatedIntermediateMB(s) != 0 {
		t.Error("closed-form pipeline should have no weight state")
	}
}

func TestFanoutIncreasesCollectionCost(t *testing.T) {
	cl := mustCluster(t, Default())
	src := rng.New(11)
	narrow := paperShape(true, true, true)
	wide := narrow
	wide.Fanout = 64
	tNarrow := cl.SimulateBreakdown(src, narrow).QuerySec
	tWide := cl.SimulateBreakdown(src, wide).QuerySec
	if tWide <= tNarrow {
		t.Errorf("fanout did not increase collection cost: %.3f vs %.3f", tWide, tNarrow)
	}
}

func TestHitRatioBounds(t *testing.T) {
	cfg := Default()
	cfg.CacheFraction = 1
	cfg.StoredSampleMB = 1 // everything fits
	cl := mustCluster(t, cfg)
	if h := cl.hitRatio(); h != 1 {
		t.Errorf("hit ratio = %v, want clamped to 1", h)
	}
	cfg2 := Default()
	cfg2.CacheFraction = 0
	cl2 := mustCluster(t, cfg2)
	if h := cl2.hitRatio(); h != 0 {
		t.Errorf("zero cache hit ratio = %v", h)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{QuerySec: 1, ErrorSec: 2, DiagSec: 3}
	if b.Total() != 6 {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestSimulatedTimesArePositiveAndFinite(t *testing.T) {
	cl := mustCluster(t, Default())
	src := rng.New(12)
	for _, consolidated := range []bool{true, false} {
		for _, closedForm := range []bool{true, false} {
			b := cl.SimulateBreakdown(src, paperShape(consolidated, consolidated, closedForm))
			for _, v := range []float64{b.QuerySec, b.ErrorSec, b.DiagSec} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("degenerate simulated time %v (consolidated=%v closedForm=%v)",
						v, consolidated, closedForm)
				}
			}
		}
	}
}
