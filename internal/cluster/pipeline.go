package cluster

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// QueryShape summarizes one query pipeline for the cost model: the sample
// it scans, the estimation work it carries, and which §5/§6 optimizations
// its plan uses. The benchmark harness builds a QueryShape per trace query
// and asks the cluster for the simulated latency of each pipeline
// component (query execution / error estimation / diagnostics), matching
// the stacked bars of Figs. 7 and 9.
type QueryShape struct {
	// SampleMB and SampleRows size the stored sample the query runs on.
	SampleMB   float64
	SampleRows int64
	// Selectivity is the fraction of rows surviving the WHERE clause.
	Selectivity float64
	// BootstrapK is the number of bootstrap resamples (0 = closed forms
	// only need the one pass).
	BootstrapK int
	// DiagSizes are the diagnostic subsample sizes in rows; DiagP the
	// subsample count per size.
	DiagSizes []int
	DiagP     int
	// ClosedForm selects ξ for the diagnostic: closed form (one error
	// estimate per subsample) versus bootstrap (K+1 evaluations per
	// subsample).
	ClosedForm bool
	// Consolidated and Pushdown mirror the plan flags.
	Consolidated bool
	Pushdown     bool
	// Fanout is the GROUP BY result width.
	Fanout int
}

func (s QueryShape) bytesPerRowMB() float64 {
	if s.SampleRows == 0 {
		return 0
	}
	return s.SampleMB / float64(s.SampleRows)
}

func (s QueryShape) filteredRows() float64 {
	sel := s.Selectivity
	if sel <= 0 || sel > 1 {
		sel = 1
	}
	return float64(s.SampleRows) * sel
}

// QueryWorkload is the base approximate-query component: one scan of the
// sample computing the plain aggregate.
func (s QueryShape) QueryWorkload() Workload {
	return Workload{Subqueries: []Subquery{{
		Count:  1,
		MB:     s.SampleMB,
		Rows:   s.SampleRows,
		RowOps: 1,
		Fanout: s.Fanout,
	}}}
}

// ErrorEstimationWorkload is the additional work of producing error bars.
// Closed forms piggyback on the base scan (one extra row-op per row). The
// bootstrap costs K resample aggregations: as K separate full-scan
// subqueries in the naive plan, or as in-scan weighted aggregation plus
// weight draws in the consolidated plan.
func (s QueryShape) ErrorEstimationWorkload() Workload {
	if s.BootstrapK <= 0 {
		// Closed form: variance accumulators in the same scan.
		return Workload{ExtraCPURowOps: s.filteredRows()}
	}
	k := float64(s.BootstrapK)
	if !s.Consolidated {
		rowOps := 2.0 // draw + weighted aggregate per row
		return Workload{Subqueries: []Subquery{{
			Count:  s.BootstrapK,
			MB:     s.SampleMB,
			Rows:   s.SampleRows,
			RowOps: rowOps,
			Fanout: s.Fanout,
		}}}
	}
	weightRows := s.filteredRows()
	if !s.Pushdown {
		// Weights drawn before the filter: every scanned row pays.
		weightRows = float64(s.SampleRows)
	}
	return Workload{
		ExtraCPURowOps:   k * s.filteredRows(),
		ExtraWeightDraws: k * weightRows,
		// Each task of the consolidated scan ships K extra resample
		// partials to the collector.
		CollectorMB:   s.SampleMB,
		CollectorCols: k,
	}
}

// DiagnosticsWorkload is the additional work of running Algorithm 1. The
// naive plan executes every subsample evaluation as its own subquery
// (tens of thousands of small scans); the consolidated plan computes the
// same mathematics inside the single pass.
func (s QueryShape) DiagnosticsWorkload() Workload {
	if s.DiagP <= 0 || len(s.DiagSizes) == 0 {
		return Workload{}
	}
	perSubsampleEvals := 1 // θ once per subsample (closed-form ξ folds in)
	if !s.ClosedForm {
		k := s.BootstrapK
		if k <= 0 {
			k = 100
		}
		perSubsampleEvals = k + 1
	}
	if !s.Consolidated {
		var subs []Subquery
		for _, b := range s.DiagSizes {
			subs = append(subs, Subquery{
				Count:  s.DiagP * perSubsampleEvals,
				MB:     float64(b) * s.bytesPerRowMB(),
				Rows:   int64(b),
				RowOps: 2,
			})
		}
		return Workload{Subqueries: subs}
	}
	var rowOps, draws float64
	for _, b := range s.DiagSizes {
		rowOps += float64(s.DiagP) * float64(b) * float64(perSubsampleEvals)
		if !s.ClosedForm {
			draws += float64(s.DiagP) * float64(b) * float64(perSubsampleEvals-1)
		}
	}
	return Workload{
		ExtraCPURowOps:   rowOps,
		ExtraWeightDraws: draws,
		// Each subsample evaluation delivers one result to the collector;
		// subsamples are contiguous row ranges, so their partials come
		// from the few tasks holding them rather than from every task.
		CollectorPartials: float64(len(s.DiagSizes) * s.DiagP * perSubsampleEvals),
	}
}

// ConsolidatedIntermediateMB estimates the per-machine in-flight state of
// the consolidated scan: each running task holds its partition's K weight
// columns (the diagnostic's subsample weights stream block-by-block and
// never accumulate). The 2x factor covers runtime object overhead and
// shuffle/serialization buffers beyond the raw 8-byte weights (the real
// system "temporarily increases the overall amount of intermediate data",
// §5.3.2). This per-machine demand competes with the input cache for RAM —
// the Fig. 8(d) tradeoff.
func (cl *Cluster) ConsolidatedIntermediateMB(s QueryShape) float64 {
	if !s.Consolidated || s.BootstrapK <= 0 || s.SampleRows <= 0 {
		return 0
	}
	bytesPerRow := s.SampleMB * 1e6 / float64(s.SampleRows)
	if bytesPerRow <= 0 {
		return 0
	}
	partitionRows := cl.cfg.TargetPartitionMB * 1e6 / bytesPerRow
	return float64(cl.cfg.SlotsPerMachine) * partitionRows *
		float64(s.BootstrapK) * 8 * 2 / 1e6
}

// SimulateBreakdown costs the three pipeline components of one query. The
// consolidated plan's intermediate weight state is charged to the base
// scan, since that is the pass that materializes it.
func (cl *Cluster) SimulateBreakdown(src *rng.Source, s QueryShape) Breakdown {
	qw := s.QueryWorkload()
	if s.Consolidated && len(qw.Subqueries) > 0 {
		qw.Subqueries[0].IntermediateMBPerMachine = cl.ConsolidatedIntermediateMB(s)
	}
	return Breakdown{
		QuerySec: cl.Simulate(src, qw),
		ErrorSec: cl.Simulate(src, s.ErrorEstimationWorkload()),
		DiagSec:  cl.Simulate(src, s.DiagnosticsWorkload()),
	}
}

// Breakdown is the per-component simulated latency of one query pipeline
// (the stacked bars of Figs. 7 and 9).
type Breakdown struct {
	QuerySec float64
	ErrorSec float64
	DiagSec  float64
}

// Total returns the end-to-end latency. The three components execute
// concurrently in the optimized system but share the same scan, so the
// total is their sum: the base scan plus each component's incremental
// cost.
func (b Breakdown) Total() float64 { return b.QuerySec + b.ErrorSec + b.DiagSec }

// Observe publishes the breakdown into a metrics registry: per-component
// simulated seconds (aqp_cluster_sim_seconds) and, when the wall-clock time
// spent simulating is known, the simulated-vs-wall ratio — how many seconds
// of cluster time one second of simulation covers. Nil registry is a no-op.
func (b Breakdown) Observe(reg *obs.Registry, wall time.Duration) {
	if reg == nil {
		return
	}
	const help = "Simulated cluster seconds per query, by pipeline component."
	reg.Histogram("aqp_cluster_sim_seconds", help, obs.SimSecondsBuckets,
		"component", "query").Observe(b.QuerySec)
	reg.Histogram("aqp_cluster_sim_seconds", help, obs.SimSecondsBuckets,
		"component", "error").Observe(b.ErrorSec)
	reg.Histogram("aqp_cluster_sim_seconds", help, obs.SimSecondsBuckets,
		"component", "diag").Observe(b.DiagSec)
	reg.Histogram("aqp_cluster_sim_seconds", help, obs.SimSecondsBuckets,
		"component", "total").Observe(b.Total())
	if secs := wall.Seconds(); secs > 0 {
		reg.Histogram("aqp_cluster_sim_wall_ratio",
			"Simulated cluster seconds per wall-clock second of simulation.",
			obs.RatioBuckets).Observe(b.Total() / secs)
	}
}
