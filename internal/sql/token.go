// Package sql implements the SQL subset the engine accepts: single-table
// SELECT statements with aggregate expressions, arithmetic, WHERE filters,
// GROUP BY, nested subqueries in FROM, UNION ALL (used by the naive
// bootstrap rewrite of §5.2) and the paper's TABLESAMPLE POISSONIZED
// sampling clause.
package sql

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , * + - / = < > <= >= != <>
	tokKeyword // SELECT FROM WHERE GROUP BY AS AND OR NOT UNION ALL TABLESAMPLE POISSONIZED
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	case tokKeyword:
		return "keyword"
	default:
		return "unknown"
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers keep original case
	num  float64
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the lexer (case-insensitive in input).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "UNION": true,
	"ALL": true, "TABLESAMPLE": true, "POISSONIZED": true,
}

// Error is a parse or lex error with a byte position into the query text.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos)
}

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
