package sql

import (
	"strings"
	"testing"
)

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("statement type %T", stmt)
	}
	if len(sel.Items) != 1 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	call, ok := sel.Items[0].Expr.(*FuncCall)
	if !ok || call.Name != "AVG" {
		t.Fatalf("item = %v", sel.Items[0].Expr)
	}
	tn, ok := sel.From.(*TableName)
	if !ok || tn.Name != "Sessions" || tn.Sample != nil {
		t.Fatalf("from = %v", sel.From)
	}
	cmp, ok := sel.Where.(*Binary)
	if !ok || cmp.Op != "=" {
		t.Fatalf("where = %v", sel.Where)
	}
	lit, ok := cmp.R.(*Literal)
	if !ok || !lit.IsStr || lit.Str != "NYC" {
		t.Fatalf("where rhs = %v", cmp.R)
	}
}

func TestParseTableSample(t *testing.T) {
	stmt := MustParse("SELECT SUM(x) FROM s TABLESAMPLE POISSONIZED (100)")
	tn := stmt.(*Select).From.(*TableName)
	if tn.Sample == nil || tn.Sample.RatePercent != 100 {
		t.Fatalf("sample = %+v", tn.Sample)
	}
	if tn.Sample.Rate() != 1 {
		t.Fatalf("rate = %v", tn.Sample.Rate())
	}
}

func TestParseGroupByAndAliases(t *testing.T) {
	stmt := MustParse("SELECT city, AVG(time) AS avg_t, COUNT(*) cnt FROM s GROUP BY city, day")
	sel := stmt.(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "avg_t" || sel.Items[2].Alias != "cnt" {
		t.Fatalf("aliases = %q, %q", sel.Items[1].Alias, sel.Items[2].Alias)
	}
	if len(sel.GroupBy) != 2 || sel.GroupBy[0] != "city" || sel.GroupBy[1] != "day" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	if _, ok := sel.Items[2].Expr.(*FuncCall).Args[0].(*Star); !ok {
		t.Fatal("COUNT(*) star argument not parsed")
	}
}

func TestParseUnionAll(t *testing.T) {
	q := "SELECT AVG(x) FROM s TABLESAMPLE POISSONIZED (100)" +
		" UNION ALL SELECT AVG(x) FROM s TABLESAMPLE POISSONIZED (100)" +
		" UNION ALL SELECT AVG(x) FROM s TABLESAMPLE POISSONIZED (100)"
	stmt := MustParse(q)
	u, ok := stmt.(*UnionAll)
	if !ok {
		t.Fatalf("type %T", stmt)
	}
	if len(u.Selects) != 3 {
		t.Fatalf("selects = %d", len(u.Selects))
	}
}

func TestParseNestedSubquery(t *testing.T) {
	q := "SELECT AVG(resample_answer) FROM (SELECT SUM(v) AS resample_answer FROM s) AS inner_q"
	stmt := MustParse(q)
	sel := stmt.(*Select)
	sq, ok := sel.From.(*SubQuery)
	if !ok {
		t.Fatalf("from type %T", sel.From)
	}
	if sq.Alias != "inner_q" {
		t.Fatalf("alias = %q", sq.Alias)
	}
	inner, ok := sq.Stmt.(*Select)
	if !ok || inner.Items[0].Alias != "resample_answer" {
		t.Fatal("inner select not parsed")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt := MustParse("SELECT a + b * c FROM t WHERE x > 1 AND y < 2 OR NOT z = 3")
	sel := stmt.(*Select)
	add := sel.Items[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	or := sel.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("where top = %s", or.Op)
	}
	and := or.L.(*Binary)
	if and.Op != "AND" {
		t.Fatal("AND should bind tighter than OR")
	}
	not := or.R.(*Unary)
	if not.Op != "NOT" {
		t.Fatal("NOT missing")
	}
}

func TestParseArithmeticAndUnaryMinus(t *testing.T) {
	stmt := MustParse("SELECT SUM(x * 2 - -3) FROM t WHERE x / 4 >= 2.5e1")
	sel := stmt.(*Select)
	cmp := sel.Where.(*Binary)
	if cmp.Op != ">=" {
		t.Fatalf("op = %s", cmp.Op)
	}
	if lit := cmp.R.(*Literal); lit.Num != 25 {
		t.Fatalf("scientific literal = %v", lit.Num)
	}
}

func TestParseComparatorVariants(t *testing.T) {
	for _, q := range []string{
		"SELECT x FROM t WHERE a != b",
		"SELECT x FROM t WHERE a <> b",
	} {
		sel := MustParse(q).(*Select)
		if sel.Where.(*Binary).Op != "!=" {
			t.Errorf("%s: op = %s", q, sel.Where.(*Binary).Op)
		}
	}
	sel := MustParse("SELECT x FROM t WHERE a <= b AND c >= d").(*Select)
	and := sel.Where.(*Binary)
	if and.L.(*Binary).Op != "<=" || and.R.(*Binary).Op != ">=" {
		t.Error("<=/>= not parsed")
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := MustParse("SELECT x FROM t WHERE name = 'O''Brien'").(*Select)
	lit := sel.Where.(*Binary).R.(*Literal)
	if lit.Str != "O'Brien" {
		t.Fatalf("escaped string = %q", lit.Str)
	}
}

func TestParseComments(t *testing.T) {
	sel := MustParse("SELECT x -- the column\nFROM t").(*Select)
	if sel.From.(*TableName).Name != "t" {
		t.Fatal("comment not skipped")
	}
}

func TestParsePercentile(t *testing.T) {
	sel := MustParse("SELECT PERCENTILE(latency, 0.99) FROM t").(*Select)
	call := sel.Items[0].Expr.(*FuncCall)
	if call.Name != "PERCENTILE" || len(call.Args) != 2 {
		t.Fatalf("call = %v", call)
	}
	if call.Args[1].(*Literal).Num != 0.99 {
		t.Fatal("percentile level wrong")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	sel := MustParse("select avg(x) from t where y > 0 group by z").(*Select)
	if sel.Items[0].Expr.(*FuncCall).Name != "AVG" {
		t.Fatal("function name not upper-cased")
	}
	if len(sel.GroupBy) != 1 {
		t.Fatal("lowercase GROUP BY not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t GROUP",
		"SELECT x FROM t GROUP BY",
		"SELECT x FROM t extra garbage (",
		"SELECT x FROM t TABLESAMPLE (100)",
		"SELECT x FROM t TABLESAMPLE POISSONIZED 100",
		"SELECT x FROM t TABLESAMPLE POISSONIZED (-5)",
		"SELECT x FROM t WHERE name = 'unterminated",
		"SELECT x FROM t UNION SELECT x FROM t", // bare UNION unsupported
		"SELECT f(x FROM t",
		"SELECT (x FROM t",
		"SELECT x FROM t WHERE a ! b",
		"SELECT 1.2.3 FROM t",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", q)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT x FROM t WHERE !")
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	if !errorsAs(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos <= 0 {
		t.Errorf("position = %d", perr.Pos)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error text %q lacks offset", err.Error())
	}
}

// errorsAs avoids importing errors for one call.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestRoundTripStrings(t *testing.T) {
	queries := []string{
		"SELECT AVG(Time) FROM Sessions WHERE (City = 'NYC')",
		"SELECT SUM(x) AS total FROM s TABLESAMPLE POISSONIZED (100)",
		"SELECT city, COUNT(*) FROM s GROUP BY city",
		"SELECT AVG(a) FROM (SELECT SUM(v) AS a FROM s) AS q",
	}
	for _, q := range queries {
		stmt := MustParse(q)
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Errorf("round-trip re-parse of %q failed: %v", rendered, err)
			continue
		}
		if again.String() != rendered {
			t.Errorf("round trip not stable: %q -> %q", rendered, again.String())
		}
	}
}

func TestIsAggregate(t *testing.T) {
	udf := func(name string) bool { return name == "MYUDF" }
	cases := []struct {
		q    string
		want bool
	}{
		{"SELECT AVG(x) FROM t", true},
		{"SELECT x + 1 FROM t", false},
		{"SELECT 2 * SUM(x) FROM t", true},
		{"SELECT MYUDF(x) FROM t", true},
		{"SELECT OTHERFN(x) FROM t", false},
		{"SELECT -MIN(x) FROM t", true},
	}
	for _, c := range cases {
		sel := MustParse(c.q).(*Select)
		if got := IsAggregate(sel.Items[0].Expr, udf); got != c.want {
			t.Errorf("IsAggregate(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestColumns(t *testing.T) {
	sel := MustParse("SELECT a + b * a FROM t WHERE c > 0").(*Select)
	cols := Columns(sel.Items[0].Expr)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns = %v", cols)
	}
	whereCols := Columns(sel.Where)
	if len(whereCols) != 1 || whereCols[0] != "c" {
		t.Errorf("where Columns = %v", whereCols)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not sql at all")
}

func TestLiteralString(t *testing.T) {
	if (&Literal{Num: 2.5}).String() != "2.5" {
		t.Errorf("numeric literal = %q", (&Literal{Num: 2.5}).String())
	}
	if (&Literal{Str: "a'b", IsStr: true}).String() != "'a''b'" {
		t.Errorf("string literal = %q", (&Literal{Str: "a'b", IsStr: true}).String())
	}
}
