package sql

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestParseNeverPanics drives the parser with random byte soup and random
// mutations of valid queries: it must return an error or a statement,
// never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseMutatedQueries mutates valid queries by deleting, duplicating
// and swapping tokens; the parser must stay panic-free and must still
// accept the unmutated forms.
func TestParseMutatedQueries(t *testing.T) {
	seeds := []string{
		"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'",
		"SELECT city, COUNT(*) FROM s GROUP BY city",
		"SELECT SUM(x) FROM s TABLESAMPLE POISSONIZED (100)",
		"SELECT PERCENTILE(x, 0.99), MAX(y) FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
		"SELECT AVG(a) FROM (SELECT SUM(v) AS a FROM s UNION ALL SELECT SUM(v) AS a FROM s) AS q",
	}
	src := rng.New(7)
	for _, q := range seeds {
		if _, err := Parse(q); err != nil {
			t.Fatalf("seed query rejected: %s: %v", q, err)
		}
		tokens := strings.Fields(q)
		for trial := 0; trial < 200; trial++ {
			mut := append([]string(nil), tokens...)
			switch src.Intn(3) {
			case 0: // delete a token
				i := src.Intn(len(mut))
				mut = append(mut[:i], mut[i+1:]...)
			case 1: // duplicate a token
				i := src.Intn(len(mut))
				mut = append(mut[:i+1], mut[i:]...)
			case 2: // swap two tokens
				i, j := src.Intn(len(mut)), src.Intn(len(mut))
				mut[i], mut[j] = mut[j], mut[i]
			}
			input := strings.Join(mut, " ")
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutated query %q: %v", input, r)
					}
				}()
				_, _ = Parse(input)
			}()
		}
	}
}

// TestLexerUnicodeAndLongInput exercises lexer edge cases.
func TestLexerUnicodeAndLongInput(t *testing.T) {
	// Unicode identifiers are letters per the lexer: accepted as idents.
	if _, err := Parse("SELECT AVG(durée) FROM sessions"); err != nil {
		t.Errorf("unicode identifier rejected: %v", err)
	}
	// A very long but valid query parses.
	var sb strings.Builder
	sb.WriteString("SELECT AVG(x) FROM t WHERE x > 0")
	for i := 0; i < 500; i++ {
		sb.WriteString(" AND x < 1000000")
	}
	if _, err := Parse(sb.String()); err != nil {
		t.Errorf("long conjunction rejected: %v", err)
	}
	// Deep parenthesis nesting parses without stack issues at sane depth.
	expr := "x"
	for i := 0; i < 200; i++ {
		expr = "(" + expr + ")"
	}
	if _, err := Parse("SELECT AVG(" + expr + ") FROM t"); err != nil {
		t.Errorf("nested parens rejected: %v", err)
	}
}
