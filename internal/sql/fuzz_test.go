package sql

import (
	"testing"
)

// FuzzParse drives the lexer and recursive-descent parser with arbitrary
// byte strings. The contract under fuzzing: Parse never panics, and when it
// accepts an input, the statement round-trips — String() re-parses to an
// equal rendering (the property the hand-written tests check on the happy
// path, here enforced on everything the fuzzer can reach).
func FuzzParse(f *testing.F) {
	// Seed corpus: the grammar's happy paths and every malformed shape the
	// unit tests enumerate, so the fuzzer starts at the grammar frontier.
	seeds := []string{
		"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'",
		"SELECT SUM(x) FROM s TABLESAMPLE POISSONIZED (100)",
		"SELECT city, AVG(time) AS avg_t, COUNT(*) cnt FROM s GROUP BY city, day",
		"SELECT AVG(resample_answer) FROM (SELECT SUM(v) AS resample_answer FROM s) AS inner_q",
		"SELECT a + b * c FROM t WHERE x > 1 AND y < 2 OR NOT z = 3",
		"SELECT SUM(x * 2 - -3) FROM t WHERE x / 4 >= 2.5e1",
		"SELECT x FROM t WHERE a != b",
		"SELECT x FROM t WHERE a <> b",
		"SELECT x FROM t WHERE a <= b AND c >= d",
		"SELECT x FROM t WHERE name = 'O''Brien'",
		"SELECT x -- the column\nFROM t",
		"SELECT PERCENTILE(latency, 0.99) FROM t",
		"SELECT x FROM t UNION ALL SELECT y FROM u",
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t GROUP",
		"SELECT x FROM t GROUP BY",
		"SELECT x FROM t extra garbage (",
		"SELECT x FROM t TABLESAMPLE (100)",
		"SELECT x FROM t TABLESAMPLE POISSONIZED 100",
		"SELECT x FROM t TABLESAMPLE POISSONIZED (-5)",
		"SELECT x FROM t WHERE name = 'unterminated",
		"SELECT x FROM t UNION SELECT x FROM t",
		"SELECT f(x FROM t",
		"SELECT (x FROM t",
		"SELECT x FROM t WHERE a ! b",
		"SELECT 1.2.3 FROM t",
		"SELECT x FROM t WHERE !",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input) // must not panic on any input
		if err != nil {
			return
		}
		// Accepted input: the rendering must be stable under re-parsing.
		r1 := stmt.String()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, r1, err)
		}
		if r2 := stmt2.String(); r2 != r1 {
			t.Fatalf("rendering not a fixed point:\n  input: %q\n  first: %q\n  second: %q",
				input, r1, r2)
		}
	})
}
