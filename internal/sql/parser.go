package sql

import "strings"

// Parse parses one SQL statement (SELECT or a UNION ALL chain).
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().pos, "unexpected trailing input %s", p.cur())
	}
	return stmt, nil
}

// MustParse is Parse but panics on error; for tests and generated queries.
func MustParse(src string) Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.cur().pos, "expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return errf(p.cur().pos, "expected %q, found %s", sym, p.cur())
	}
	return nil
}

func (p *parser) parseStatement() (Statement, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !(p.cur().kind == tokKeyword && p.cur().text == "UNION") {
		return first, nil
	}
	union := &UnionAll{Selects: []*Select{first}}
	for p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, err
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		union.Selects = append(union.Selects, next)
	}
	return union, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			if p.cur().kind != tokIdent {
				return nil, errf(p.cur().pos, "expected column name in GROUP BY, found %s", p.cur())
			}
			sel.GroupBy = append(sel.GroupBy, p.advance().text)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return SelectItem{}, errf(p.cur().pos, "expected alias after AS, found %s", p.cur())
		}
		item.Alias = p.advance().text
	} else if p.cur().kind == tokIdent {
		// Bare alias: SELECT avg(x) answer FROM ...
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.acceptSymbol("(") {
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		sq := &SubQuery{Stmt: stmt}
		if p.acceptKeyword("AS") {
			if p.cur().kind != tokIdent {
				return nil, errf(p.cur().pos, "expected alias after AS, found %s", p.cur())
			}
			sq.Alias = p.advance().text
		} else if p.cur().kind == tokIdent {
			sq.Alias = p.advance().text
		}
		return sq, nil
	}
	if p.cur().kind != tokIdent {
		return nil, errf(p.cur().pos, "expected table name, found %s", p.cur())
	}
	name := p.advance().text
	ref := &TableName{Name: name}
	if p.acceptKeyword("TABLESAMPLE") {
		if err := p.expectKeyword("POISSONIZED"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.cur().kind != tokNumber {
			return nil, errf(p.cur().pos, "expected sampling rate, found %s", p.cur())
		}
		rate := p.advance().num
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if rate <= 0 {
			return nil, errf(p.cur().pos, "POISSONIZED rate must be positive, got %g", rate)
		}
		ref.Sample = &PoissonSample{RatePercent: rate}
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((= != < <= > >=) add)?
//	add  := mul ((+ -) mul)*
//	mul  := unary ((* /) unary)*
//	unary := - unary | primary
//	primary := number | string | ident | ident(args) | ( expr ) | *
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		switch p.cur().text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.advance().text
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.advance().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &Literal{Num: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return &Literal{Str: t.text, IsStr: true}, nil
	case t.kind == tokSymbol && t.text == "*":
		p.advance()
		return &Star{}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		if p.acceptSymbol("(") {
			call := &FuncCall{Name: strings.ToUpper(t.text)}
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &ColumnRef{Name: t.text}, nil
	default:
		return nil, errf(t.pos, "expected expression, found %s", t)
	}
}
