package sql

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer converts query text into tokens.
type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and -- comments.
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if unicode.IsSpace(r) {
			l.pos++
			continue
		}
		if r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	r := l.src[l.pos]

	switch {
	case unicode.IsLetter(r) || r == '_':
		for l.pos < len(l.src) &&
			(unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) ||
				l.src[l.pos] == '_' || l.src[l.pos] == '.') {
			l.pos++
		}
		word := string(l.src[start:l.pos])
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case unicode.IsDigit(r) || (r == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		for l.pos < len(l.src) &&
			(unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
				l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') &&
					(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		text := string(l.src[start:l.pos])
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errf(start, "bad numeric literal %q", text)
		}
		return token{kind: tokNumber, text: text, num: v, pos: start}, nil

	case r == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteRune('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteRune(c)
			l.pos++
		}
		return token{}, errf(start, "unterminated string literal")

	case strings.ContainsRune("(),*+-/=", r):
		l.pos++
		return token{kind: tokSymbol, text: string(r), pos: start}, nil

	case r == '<':
		l.pos++
		if l.peekRune() == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "<=", pos: start}, nil
		}
		if l.peekRune() == '>' {
			l.pos++
			return token{kind: tokSymbol, text: "!=", pos: start}, nil
		}
		return token{kind: tokSymbol, text: "<", pos: start}, nil

	case r == '>':
		l.pos++
		if l.peekRune() == '=' {
			l.pos++
			return token{kind: tokSymbol, text: ">=", pos: start}, nil
		}
		return token{kind: tokSymbol, text: ">", pos: start}, nil

	case r == '!':
		l.pos++
		if l.peekRune() == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "!=", pos: start}, nil
		}
		return token{}, errf(start, "unexpected character '!'")

	default:
		return token{}, errf(start, "unexpected character %q", string(r))
	}
}

// lexAll tokenizes the whole input (used by the parser, which buffers all
// tokens up front — queries are short).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
