package sql

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement: either *Select or *UnionAll.
type Statement interface {
	// String renders the statement back to SQL (round-trippable).
	String() string
	stmt()
}

// Select is a single SELECT statement.
type Select struct {
	Items   []SelectItem
	From    TableRef
	Where   Expr     // nil when absent
	GroupBy []string // empty when absent
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From.String())
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(s.GroupBy, ", "))
	}
	return sb.String()
}

// UnionAll is a UNION ALL chain of selects (the naive bootstrap rewrite of
// §5.2 produces one subquery per resample).
type UnionAll struct {
	Selects []*Select
}

func (*UnionAll) stmt() {}

func (u *UnionAll) String() string {
	parts := make([]string, len(u.Selects))
	for i, s := range u.Selects {
		parts[i] = s.String()
	}
	return strings.Join(parts, " UNION ALL ")
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is a FROM-clause source: *TableName or *SubQuery.
type TableRef interface {
	String() string
	tableRef()
}

// TableName references a stored table, optionally with a Poissonized
// sampling clause.
type TableName struct {
	Name   string
	Sample *PoissonSample // nil when absent
}

func (*TableName) tableRef() {}

func (t *TableName) String() string {
	if t.Sample == nil {
		return t.Name
	}
	return fmt.Sprintf("%s TABLESAMPLE POISSONIZED (%g)", t.Name, t.Sample.RatePercent)
}

// PoissonSample is the TABLESAMPLE POISSONIZED (rate) clause; the argument
// is the Poisson rate multiplied by 100, per §5.2.
type PoissonSample struct {
	RatePercent float64
}

// Rate returns the Poisson rate (RatePercent / 100).
func (p *PoissonSample) Rate() float64 { return p.RatePercent / 100 }

// SubQuery is a parenthesized SELECT (or UNION ALL) in a FROM clause.
type SubQuery struct {
	Stmt  Statement
	Alias string
}

func (*SubQuery) tableRef() {}

func (s *SubQuery) String() string {
	out := "(" + s.Stmt.String() + ")"
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// Expr is an expression node: *Literal, *ColumnRef, *Binary, *Unary,
// *FuncCall or *Star.
type Expr interface {
	String() string
	expr()
}

// Literal is a numeric or string constant.
type Literal struct {
	Num   float64
	Str   string
	IsStr bool
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	if l.IsStr {
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	}
	// %g never emits trailing fractional zeros, so the value round-trips
	// as-is; trimming zeros here would corrupt integers (100 -> "1").
	return fmt.Sprintf("%g", l.Num)
}

// ColumnRef names a column.
type ColumnRef struct {
	Name string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string { return c.Name }

// Star is the * in COUNT(*).
type Star struct{}

func (*Star) expr() {}

func (*Star) String() string { return "*" }

// Binary is a binary operation. Op is one of
// + - * / = != < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr() {}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Unary is a unary operation: "-" or "NOT".
type Unary struct {
	Op string
	E  Expr
}

func (*Unary) expr() {}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.E.String() + ")"
	}
	return "(" + u.Op + u.E.String() + ")"
}

// FuncCall is an aggregate or scalar function application. Name is stored
// upper-cased.
type FuncCall struct {
	Name string
	Args []Expr
}

func (*FuncCall) expr() {}

func (f *FuncCall) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// AggregateNames are the built-in aggregate functions the planner
// recognizes; any other FuncCall is treated as a registered UDF (aggregate)
// or scalar function.
var AggregateNames = map[string]bool{
	"AVG": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true,
	"VARIANCE": true, "STDEV": true, "PERCENTILE": true,
}

// IsAggregate reports whether the expression tree contains an aggregate
// function call (built-in or any function call, since the engine's UDFs are
// aggregates).
func IsAggregate(e Expr, isUDF func(name string) bool) bool {
	switch v := e.(type) {
	case *FuncCall:
		if AggregateNames[v.Name] || (isUDF != nil && isUDF(v.Name)) {
			return true
		}
		for _, a := range v.Args {
			if IsAggregate(a, isUDF) {
				return true
			}
		}
		return false
	case *Binary:
		return IsAggregate(v.L, isUDF) || IsAggregate(v.R, isUDF)
	case *Unary:
		return IsAggregate(v.E, isUDF)
	default:
		return false
	}
}

// Columns returns the distinct column names referenced by the expression,
// in first-appearance order.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *ColumnRef:
			key := strings.ToLower(v.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, v.Name)
			}
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Unary:
			walk(v.E)
		case *FuncCall:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
