package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs a scaled-down deterministic configuration per iteration; run
//
//	go test -bench=. -benchmem
//
// at the repository root, or use cmd/aqpbench for full-scale tabular
// output.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/plan"
	"repro/internal/resample"
	"repro/internal/rng"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/workload"
)

// benchConfig is deliberately small: benchmarks measure per-iteration cost
// of regenerating a figure, not statistical power.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.QueriesPerSet = 4
	cfg.PopulationSize = 20000
	cfg.SampleSize = 2000
	cfg.Trials = 12
	cfg.TruthP = 60
	cfg.BootstrapK = 40
	cfg.DiagP = 25
	cfg.Workers = 4
	return cfg
}

// BenchmarkFig1SampleSizes regenerates Fig. 1 (required sample size per
// technique and target relative error).
func BenchmarkFig1SampleSizes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1(cfg)
		if len(res.Sizes) != 3 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig3EstimatorAccuracy regenerates Fig. 3 and the §3 statistics
// (bootstrap & closed-form accuracy on both traces).
func BenchmarkFig3EstimatorAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(cfg)
		if len(res.Bars) != 2 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig4bDiagnosticClosedForm regenerates Fig. 4(b).
func BenchmarkFig4bDiagnosticClosedForm(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4b(cfg)
		if len(res.Bars) != 2 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig4cDiagnosticBootstrap regenerates Fig. 4(c).
func BenchmarkFig4cDiagnosticBootstrap(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4c(cfg)
		if len(res.Bars) != 2 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig7NaivePipeline regenerates Fig. 7(a)+(b): naive per-query
// latency on the simulated cluster.
func BenchmarkFig7NaivePipeline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(cfg)
		if len(res.QSet1) == 0 || len(res.QSet2) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig8abPlanOptimizations regenerates Fig. 8(a)+(b): plan
// optimization speedup CDFs.
func BenchmarkFig8abPlanOptimizations(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8ab(cfg)
		if len(res.ErrQ2) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig8cParallelismSweep regenerates Fig. 8(c).
func BenchmarkFig8cParallelismSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8c(cfg)
		if len(res.Times) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig8dCacheSweep regenerates Fig. 8(d).
func BenchmarkFig8dCacheSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8d(cfg)
		if len(res.Times) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig8efPhysicalTuning regenerates Fig. 8(e)+(f).
func BenchmarkFig8efPhysicalTuning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8ef(cfg)
		if len(res.TotalQ2) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// BenchmarkFig9OptimizedPipeline regenerates Fig. 9(a)+(b).
func BenchmarkFig9OptimizedPipeline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(cfg)
		if len(res.QSet1) == 0 {
			b.Fatal("malformed result")
		}
	}
}

// --- End-to-end engine benchmarks (real execution, local) ---

func benchEngine(b *testing.B, opts core.Config) *core.Engine {
	b.Helper()
	src := rng.New(1)
	n := 200000
	times := make(table.Float64Col, n)
	cities := make(table.StringCol, n)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < n; i++ {
		times[i] = src.LogNormal(4, 0.6)
		cities[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	e := core.New(opts)
	if err := e.RegisterTable("Sessions", tbl); err != nil {
		b.Fatal(err)
	}
	if err := e.BuildSamples("Sessions", 40000); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEnginePipelineOptimized measures the real local cost of the
// fully optimized pipeline (answer + error bars + diagnostic, one scan).
func BenchmarkEnginePipelineOptimized(b *testing.B) {
	e := benchEngine(b, core.Config{Seed: 1, Workers: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePipelineNaive measures the same query with both §5.3
// rewrites disabled (the UNION-ALL-style execution path).
func BenchmarkEnginePipelineNaive(b *testing.B) {
	e := benchEngine(b, core.Config{Seed: 1, Workers: 8,
		DisableScanConsolidation: true, DisableOperatorPushdown: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationPlanRewrites measures the 2x2 grid of §5.3 rewrites on
// real local execution of a bootstrap-heavy query.
func BenchmarkAblationPlanRewrites(b *testing.B) {
	src := rng.New(2)
	n := 100000
	vals := make(table.Float64Col, n)
	keys := make(table.StringCol, n)
	for i := range vals {
		vals[i] = src.LogNormal(3, 1)
		if src.Float64() < 0.25 {
			keys[i] = "keep"
		} else {
			keys[i] = "drop"
		}
	}
	tables := map[string]*exec.StoredTable{"t": {
		Data: table.MustNew(table.Schema{
			{Name: "v", Type: table.Float64},
			{Name: "k", Type: table.String},
		}, vals, keys),
		PopRows: n * 10,
	}}
	def, err := plan.Analyze(
		sql.MustParse("SELECT PERCENTILE(v, 0.9) FROM t WHERE k = 'keep'").(*sql.Select), nil)
	if err != nil {
		b.Fatal(err)
	}
	grid := []struct {
		name                  string
		consolidate, pushdown bool
	}{
		{"naive", false, false},
		{"consolidate-only", true, false},
		{"pushdown-only", false, true},
		{"consolidate+pushdown", true, true},
	}
	for _, g := range grid {
		b.Run(g.name, func(b *testing.B) {
			opt := plan.DefaultOptions(n)
			opt.BootstrapK = 40
			opt.Diagnostics = false
			opt.ScanConsolidation = g.consolidate
			opt.OperatorPushdown = g.pushdown
			p, err := plan.Build(def, opt)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(context.Background(), p, tables, nil, exec.Config{Workers: 8, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiagnosticP shows the accuracy-vs-cost effect of the
// diagnostic's p parameter (the paper's "tens of thousands of subsample
// queries" motivation).
func BenchmarkAblationDiagnosticP(b *testing.B) {
	src := rng.New(3)
	s := make([]float64, 60000)
	for i := range s {
		s[i] = src.LogNormal(4, 0.7)
	}
	q := estimator.Query{Kind: estimator.Avg}
	for _, p := range []int{25, 50, 100} {
		b.Run(map[int]string{25: "p25", 50: "p50", 100: "p100"}[p], func(b *testing.B) {
			cfg := diagnostic.DefaultConfig(len(s))
			cfg.P = p
			b3 := len(s) / (2 * p)
			cfg.SubsampleSizes = []int{b3 / 4, b3 / 2, b3}
			for i := 0; i < b.N; i++ {
				if _, err := diagnostic.Run(context.Background(), rng.New(uint64(i)), s, q,
					estimator.ClosedForm{}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStragglerMitigation quantifies §6.3 on the simulator.
func BenchmarkAblationStragglerMitigation(b *testing.B) {
	shape := cluster.QueryShape{
		SampleMB: 20000, SampleRows: 100e6, Selectivity: 0.5,
		BootstrapK: 100, DiagSizes: []int{250000, 500000, 1000000}, DiagP: 100,
		Consolidated: true, Pushdown: true, Fanout: 1,
	}
	for _, mit := range []bool{false, true} {
		name := "without-mitigation"
		if mit {
			name = "with-mitigation"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.Default()
			cfg.Mitigation = mit
			cl, err := cluster.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total := 0.0
			for i := 0; i < b.N; i++ {
				total += cl.SimulateBreakdown(rng.New(uint64(i)), shape).Total()
			}
			b.ReportMetric(total/float64(b.N), "sim-seconds/query")
		})
	}
}

// BenchmarkBootstrapKernel is the §5.3.1 loop-order ablation: resample-major
// (one full pass + one fresh weight vector per resample, the naive
// Poissonized layout) against the blocked fused kernel (one streaming pass,
// block-major, no weight vectors). n=100k values, K=100 resamples.
func BenchmarkBootstrapKernel(b *testing.B) {
	const n, k = 100000, 100
	src := rng.New(50)
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 + 10*src.NormFloat64()
	}
	q := estimator.Query{Kind: estimator.Avg}

	b.Run("resample-major", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := rng.New(uint64(i))
			var sink float64
			for r := 0; r < k; r++ {
				w := resample.PoissonWeights(src, n)
				sink += q.EvalWeighted(values, w)
			}
			if sink == 0 {
				b.Fatal("degenerate estimates")
			}
		}
	})
	b.Run("blocked-fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sums := kernel.FusedSums(context.Background(), values, k, uint64(i), 1, 1)
			var sink float64
			for r := 0; r < k; r++ {
				sink += q.FinalizeFused(sums.WX[r], sums.W[r], n)
			}
			if sink == 0 {
				b.Fatal("degenerate estimates")
			}
		}
	})
	b.Run("blocked-fused-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sums := kernel.FusedSums(context.Background(), values, k, uint64(i), 1, 4)
			if sums.WX[0] == 0 {
				b.Fatal("degenerate estimates")
			}
		}
	})
	b.Run("blocked-generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ests, _ := kernel.Generic(context.Background(), values, k, uint64(i), 1, 1, q.EvalWeighted)
			if ests[0] == 0 {
				b.Fatal("degenerate estimates")
			}
		}
	})
}

// BenchmarkDiagnosticParallel measures diagnostic.Run's worker scaling: the
// P subsample queries at each ladder size fan out across Workers goroutines
// with a worker-count-invariant verdict.
func BenchmarkDiagnosticParallel(b *testing.B) {
	src := rng.New(51)
	s := make([]float64, 100000)
	for i := range s {
		s[i] = 10 + 3*src.NormFloat64()
	}
	q := estimator.Query{Kind: estimator.Avg}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := diagnostic.DefaultConfig(len(s))
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := diagnostic.Run(context.Background(), rng.New(uint64(i)), s, q,
					estimator.Bootstrap{K: 100}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.PerSize) == 0 {
					b.Fatal("no per-size stats")
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures synthetic trace generation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := workload.Generate(workload.TraceConfig{
			Kind: workload.Facebook, NumQueries: 10,
			PopulationSize: 10000, Seed: uint64(i), AdversarialFraction: -1,
		})
		if len(trace) != 10 {
			b.Fatal("bad trace")
		}
	}
}
