// Quickstart: load a table, build a sample, ask one approximate query with
// an error bound, and read the answer's error bars and diagnostic verdict.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/table"
)

func main() {
	// 1. Some data: a million order amounts.
	src := rng.New(7)
	amounts := make(table.Float64Col, 1_000_000)
	regions := make(table.StringCol, len(amounts))
	names := []string{"us", "eu", "apac"}
	for i := range amounts {
		amounts[i] = src.LogNormal(3.5, 0.8)
		regions[i] = names[src.Intn(len(names))]
	}
	orders := table.MustNew(table.Schema{
		{Name: "amount", Type: table.Float64},
		{Name: "region", Type: table.String},
	}, amounts, regions)

	// 2. An engine with a BlinkDB-style sample catalog.
	engine := core.New(core.Config{Seed: 7, Workers: 8})
	if err := engine.RegisterTable("orders", orders); err != nil {
		log.Fatal(err)
	}
	if err := engine.BuildSamples("orders", 5_000, 50_000); err != nil {
		log.Fatal(err)
	}

	// 3. Ask for the answer within 2% relative error at 95% confidence.
	// The engine tries the 5k-row sample first (≈4.4% error — too loose),
	// escalates to the 50k-row sample (≈1.4% — good) and stops there.
	ans, err := engine.QueryWithErrorBound(
		"SELECT AVG(amount) FROM orders WHERE region = 'eu'", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	a := ans.Groups[0].Aggs[0]
	fmt.Printf("AVG(amount | eu) = %.4f ± %.4f  (95%% CI, %s)\n",
		a.Estimate, a.ErrorBar.HalfWidth, a.Technique)
	fmt.Printf("sample used: %d rows of %d; diagnostic OK: %v; elapsed: %v\n",
		ans.SampleRows, orders.NumRows(), a.DiagnosticOK, ans.Elapsed.Round(1000))

	// 4. Compare with the exact answer.
	exact, err := engine.QueryExact("SELECT AVG(amount) FROM orders WHERE region = 'eu'")
	if err != nil {
		log.Fatal(err)
	}
	truth := exact.Groups[0].Aggs[0].Estimate
	fmt.Printf("exact answer: %.4f — inside the error bar: %v\n",
		truth, a.ErrorBar.Contains(truth))
}
