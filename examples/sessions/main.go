// Sessions reproduces the paper's running example (§2.1) at the
// statistical API level: estimate AVG(Time) of NYC sessions from a sample,
// compare every error-estimation technique against the ground-truth
// confidence interval, and show the diagnostic telling them apart — for
// both a well-behaved aggregate (AVG) and a fragile one (MAX).
package main

import (
	"context"
	"fmt"

	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/rng"
	"repro/internal/sample"
)

func main() {
	src := rng.New(2016)

	// The "Sessions WHERE City = 'NYC'" population: session times in
	// seconds, lognormal like real session-length data.
	population := make([]float64, 500_000)
	for i := range population {
		population[i] = src.LogNormal(4, 0.7)
	}
	const n = 100_000
	s := sample.WithReplacement(src, population, n)

	for _, q := range []estimator.Query{
		{Kind: estimator.Avg},
		{Kind: estimator.Max},
	} {
		fmt.Printf("== θ = %s(Time), sample n = %d ==\n", q.Name(), n)
		truth := estimator.ComputeTruth(src, population, q, n, 200, 0.95)
		fmt.Printf("θ(D) = %.4g; true 95%% interval half-width = %.4g\n",
			truth.Answer, truth.Interval.HalfWidth)

		techniques := []estimator.Estimator{
			estimator.ClosedForm{},
			estimator.Bootstrap{K: 100},
			estimator.BlockJackknife{Blocks: 50},
			estimator.LargeDeviation{Bound: estimator.Hoeffding},
			estimator.LargeDeviation{Bound: estimator.Bernstein},
		}
		for _, est := range techniques {
			iv, err := est.Interval(src, s, q, 0.95)
			if err != nil {
				fmt.Printf("  %-28s not applicable (%v)\n", est.Name(), err)
				continue
			}
			delta := estimator.Delta(iv, truth.Interval)
			verdict := "about right"
			switch {
			case delta > 0.2:
				verdict = "PESSIMISTIC (too wide)"
			case delta < -0.2:
				verdict = "OPTIMISTIC (too narrow!)"
			}
			fmt.Printf("  %-28s %s  δ=%+.2f  %s\n", est.Name(), iv, delta, verdict)

			// Would the runtime diagnostic have caught this?
			dres, err := diagnostic.Run(context.Background(), src, s, q, est, diagnostic.DefaultConfig(n))
			if err == nil {
				mark := "diagnostic: TRUSTED"
				if !dres.OK {
					mark = "diagnostic: REJECTED — " + dres.Reason
				}
				fmt.Printf("  %-28s %s\n", "", mark)
			}
		}
		fmt.Println()
	}
}
