// Conviva drives the full engine through an exploratory-dashboard
// workload in the style of the paper's Conviva trace: a batch of
// aggregation queries over a video-sessions table, each answered
// approximately with error bars, with the diagnostic deciding per query
// whether the error bars can be trusted and falling back to exact
// execution when they cannot.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

const rows = 800_000

func buildViews() *table.Table {
	src := rng.New(99)
	bitrate := make(table.Float64Col, rows)   // kbps, bimodal (SD vs HD)
	buffering := make(table.Float64Col, rows) // seconds, heavy tail
	duration := make(table.Float64Col, rows)  // seconds, lognormal
	country := make(table.StringCol, rows)
	countries := []string{"US", "BR", "IN", "DE", "JP"}
	zipf := rng.NewZipf(src, len(countries), 1.0)
	for i := 0; i < rows; i++ {
		if src.Float64() < 0.6 {
			bitrate[i] = 800 + 150*src.NormFloat64()
		} else {
			bitrate[i] = 3200 + 400*src.NormFloat64()
		}
		buffering[i] = src.Pareto(0.5, 1.4) - 0.5 // mostly ~0, rare huge stalls
		duration[i] = src.LogNormal(5, 1.1)
		country[i] = countries[zipf.Next()]
	}
	return table.MustNew(table.Schema{
		{Name: "bitrate", Type: table.Float64},
		{Name: "buffering", Type: table.Float64},
		{Name: "duration", Type: table.Float64},
		{Name: "country", Type: table.String},
	}, bitrate, buffering, duration, country)
}

func main() {
	engine := core.New(core.Config{Seed: 99, Workers: 8, BootstrapK: 100})
	if err := engine.RegisterTable("views", buildViews()); err != nil {
		log.Fatal(err)
	}
	if err := engine.BuildSamples("views", 80_000); err != nil {
		log.Fatal(err)
	}
	engine.RegisterUDF("REBUFFER_RATIO", func(values, weights []float64) float64 {
		// Fraction of sessions with noticeable stalls (> 2s buffering).
		var bad, total float64
		for i, v := range values {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			total += w
			if v > 2 {
				bad += w
			}
		}
		if total == 0 {
			return 0
		}
		return bad / total
	})

	dashboard := []string{
		"SELECT AVG(bitrate) FROM views",
		"SELECT AVG(duration) FROM views WHERE country = 'US'",
		"SELECT COUNT(*) FROM views WHERE buffering > 5",
		"SELECT PERCENTILE(duration, 0.95) FROM views",
		"SELECT REBUFFER_RATIO(buffering) FROM views",
		"SELECT MAX(buffering) FROM views", // fragile: should fall back
		"SELECT country, AVG(bitrate) FROM views GROUP BY country",
	}

	approximated, fellBack := 0, 0
	start := time.Now()
	for _, q := range dashboard {
		ans, err := engine.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Println(q)
		for _, g := range ans.Groups {
			prefix := "  "
			if g.Key != "" {
				prefix = "  " + g.Key + ": "
			}
			for _, a := range g.Aggs {
				switch {
				case a.Exact && !a.DiagnosticOK:
					fellBack++
					fmt.Printf("%s%s = %.5g (exact — diagnostic rejected approximation: %s)\n",
						prefix, a.Name, a.Estimate, short(a.DiagnosticReason))
				case a.Exact:
					fmt.Printf("%s%s = %.5g (exact)\n", prefix, a.Name, a.Estimate)
				default:
					approximated++
					fmt.Printf("%s%s = %.5g ± %.3g (%s, rel.err %.2g%%)\n",
						prefix, a.Name, a.Estimate, a.ErrorBar.HalfWidth,
						a.Technique, 100*a.RelErr)
				}
			}
		}
	}
	fmt.Printf("\ndashboard of %d queries in %v: %d aggregates approximated, %d fell back to exact\n",
		len(dashboard), time.Since(start).Round(time.Millisecond), approximated, fellBack)
	_ = stats.Mean // keep the dependency for doc links
}

func short(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
