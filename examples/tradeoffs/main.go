// Tradeoffs explores the physical-plan tuning space of §6 on the cluster
// cost model: degree of parallelism, input-cache fraction and straggler
// mitigation, for one representative bootstrap-heavy query pipeline.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/rng"
)

func main() {
	// A representative QSet-2 query: 20 GB sample, 100M rows, K=100
	// bootstrap, the paper's diagnostic ladder, fully plan-optimized.
	shape := cluster.QueryShape{
		SampleMB:     20000,
		SampleRows:   300e6,
		Selectivity:  0.5,
		BootstrapK:   100,
		DiagSizes:    []int{750000, 1500000, 3000000},
		DiagP:        100,
		Consolidated: true,
		Pushdown:     true,
		Fanout:       1,
	}

	fmt.Println("== degree of parallelism (Fig. 8(c)) ==")
	fmt.Printf("%-10s %-12s\n", "machines", "latency (s)")
	for _, m := range []int{5, 10, 20, 40, 60, 80, 100} {
		cfg := cluster.Default()
		cfg.Machines = m
		cfg.StragglerProb = 0
		fmt.Printf("%-10d %-12.2f\n", m, simulate(cfg, shape))
	}

	fmt.Println("\n== fraction of samples cached (Fig. 8(d)) ==")
	fmt.Printf("%-10s %-12s\n", "cached", "latency (s)")
	for _, f := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0} {
		cfg := cluster.Default()
		cfg.Machines = 30
		cfg.CacheFraction = f
		cfg.StragglerProb = 0
		fmt.Printf("%-10.0f%% %-12.2f\n", 100*f, simulate(cfg, shape))
	}

	fmt.Println("\n== straggler mitigation (§6.3) ==")
	for _, mitigate := range []bool{false, true} {
		cfg := cluster.Default()
		cfg.Machines = 30
		cfg.Mitigation = mitigate
		// Average across straggler realizations.
		var sum float64
		const trials = 50
		for i := uint64(0); i < trials; i++ {
			cl, err := cluster.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			sum += cl.SimulateBreakdown(rng.New(1000+i), shape).Total()
		}
		fmt.Printf("mitigation=%-5v mean latency %.2fs over %d straggler draws\n",
			mitigate, sum/trials, trials)
	}
}

func simulate(cfg cluster.Config, shape cluster.QueryShape) float64 {
	cl, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return cl.SimulateBreakdown(rng.New(1), shape).Total()
}
