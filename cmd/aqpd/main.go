// Command aqpd is the network front end for the approximate query engine:
// one process, two listeners, one admission layer.
//
//   - HTTP/JSON: POST /query {"sql": "...", "timeout_ms": 0} returns
//     per-aggregate estimates, confidence intervals, relative errors and
//     diagnostic verdicts; GET /healthz reports readiness (503 while
//     draining).
//   - MySQL wire: a text-protocol subset (handshake, mysql_native_password,
//     COM_QUERY/COM_PING/COM_INIT_DB/COM_QUIT) so any stock MySQL client
//     or driver can issue approximate queries and read error bars out of
//     ordinary resultset columns.
//
// Both listeners route into the same serve.Server, so connection traffic is
// governed by the same in-flight bounds, FIFO queue, per-query deadlines
// and shared-scan batching regardless of transport, and both transports
// return bit-identical answers for the same SQL.
//
// Data comes from -csv (with -coltypes) or, by default, a synthetic
// Sessions demo table. On SIGINT/SIGTERM the daemon drains: listeners stop
// accepting, queued queries are refused with a retryable error, in-flight
// queries finish (bounded by -drain), and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/watchdog"
	"repro/internal/wire"
)

func main() {
	var (
		httpAddr  = flag.String("http", "127.0.0.1:8632", "HTTP/JSON listener address ('' = disabled; port 0 = ephemeral)")
		mysqlAddr = flag.String("mysql", "127.0.0.1:3632", "MySQL wire listener address ('' = disabled; port 0 = ephemeral)")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug endpoints on this address")

		csvPath  = flag.String("csv", "", "load this CSV file instead of the synthetic demo table")
		tblName  = flag.String("table", "Data", "table name for -csv")
		colTypes = flag.String("coltypes", "", "comma-separated column types for -csv: float|int|string")
		genRows  = flag.Int("gen", 200000, "rows in the synthetic Sessions demo table (ignored with -csv)")
		sample   = flag.Int("sample", 0, "sample size to build (0 = rows/10)")
		seed     = flag.Uint64("seed", 42, "RNG seed: all sampling and resampling derives from it")
		workers  = flag.Int("workers", 0, "engine execution parallelism (0 = 4)")

		cacheMB  = flag.Int("cache-mb", 0, "decoded-block/answer cache budget in MiB (0 = caching off)")
		cacheTTL = flag.Duration("cache-ttl", 0, "answer-cache entry lifetime (0 = 60s default; needs -cache-mb)")

		maxInFlight = flag.Int("max-inflight", 0, "concurrently executing queries (0 = 4)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue depth (0 = 16; negative = reject when saturated)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline applied on admission (0 = none)")
		maxK        = flag.Int("max-k", 0, "per-query bootstrap resample cap (0 = engine default)")
		maxBatch    = flag.Int("max-batch", 0, "shared-scan batch size (0 or 1 = batching off)")
		batchHold   = flag.Duration("batch-hold", 0, "shared-scan group-commit window (0 = 500µs)")

		maxConns  = flag.Int("max-conns", 0, "concurrently open wire connections (0 = 256)")
		maxPacket = flag.Int("max-packet", 0, "wire command payload cap in bytes (0 = 1 MiB)")
		users     = flag.String("users", "", "user:password[,user:password...] auth table; empty admits everyone (HTTP uses basic auth, wire uses mysql_native_password)")

		historyDir = flag.String("history", "", "persist durable query/reject history to this directory")
		logFormat  = flag.String("log", "", "structured event log: 'json' writes one record per query/connection to stderr")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before stragglers are force-closed")

		otlpURL      = flag.String("otlp", "", "export query spans to this OTLP/HTTP collector endpoint (e.g. http://localhost:4318/v1/traces)")
		otlpFile     = flag.String("otlp-file", "", "append OTLP JSON span batches to this file (air-gapped fallback; combines with -otlp)")
		alertWebhook = flag.String("alert-webhook", "", "POST alert events (firing/resolved JSON) to this URL")
		auditFrac    = flag.Float64("audit-fraction", 0, "fraction of approximate queries the calibration watchdog re-executes exactly (0 = watchdog off)")
	)
	flag.Parse()

	if err := run(daemonConfig{
		httpAddr: *httpAddr, mysqlAddr: *mysqlAddr, metricsAddr: *metrics,
		csvPath: *csvPath, tblName: *tblName, colTypes: *colTypes,
		genRows: *genRows, sample: *sample, seed: *seed, workers: *workers,
		cacheMB: *cacheMB, cacheTTL: *cacheTTL,
		maxInFlight: *maxInFlight, maxQueue: *maxQueue, timeout: *timeout,
		maxK: *maxK, maxBatch: *maxBatch, batchHold: *batchHold,
		maxConns: *maxConns, maxPacket: *maxPacket, users: *users,
		historyDir: *historyDir, logFormat: *logFormat, drain: *drain,
		otlpURL: *otlpURL, otlpFile: *otlpFile,
		alertWebhook: *alertWebhook, auditFraction: *auditFrac,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "aqpd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	httpAddr, mysqlAddr, metricsAddr string
	csvPath, tblName, colTypes       string
	genRows, sample                  int
	seed                             uint64
	workers                          int
	cacheMB                          int
	cacheTTL                         time.Duration
	maxInFlight, maxQueue            int
	timeout                          time.Duration
	maxK, maxBatch                   int
	batchHold                        time.Duration
	maxConns, maxPacket              int
	users                            string
	historyDir, logFormat            string
	drain                            time.Duration
	otlpURL, otlpFile                string
	alertWebhook                     string
	auditFraction                    float64
}

func run(cfg daemonConfig) error {
	obsCfg := obs.Config{ExportURL: cfg.otlpURL, ExportPath: cfg.otlpFile}
	var elog *obs.EventLog
	switch cfg.logFormat {
	case "":
	case "json":
		elog = obs.NewEventLog(os.Stderr, obsCfg)
	default:
		return fmt.Errorf("unknown -log format %q (only 'json')", cfg.logFormat)
	}
	tracer := obs.NewTracer(obsCfg)

	// Unified alert pipeline: watchdog calibration breaches, SLO burn, and
	// admission spikes all land on one bus, fanning out to the configured
	// sinks and /debug/alerts (mounted by the engine when -metrics is set).
	bus := alert.New(alert.Config{Metrics: tracer.Registry()})
	if cfg.logFormat == "json" {
		bus.AddSink(alert.NewLogSink(slog.New(slog.NewJSONHandler(os.Stderr, nil))))
	}
	if cfg.alertWebhook != "" {
		webhook := alert.NewWebhookSink(cfg.alertWebhook, alert.WebhookOptions{
			Metrics: tracer.Registry(),
		})
		defer webhook.Close()
		bus.AddSink(webhook)
	}

	var hist *history.Store
	if cfg.historyDir != "" {
		var err error
		hist, err = history.Open(cfg.historyDir, history.Options{
			Registry: tracer.Registry(),
			Alerts:   bus,
			SLOs: []history.SLOSpec{
				{Name: "latency-p99", Kind: history.SLOLatency,
					Objective: 0.99, ThresholdMs: 1000},
				{Name: "availability", Kind: history.SLOAvailability, Objective: 0.999},
			},
		})
		if err != nil {
			return err
		}
		defer hist.Close()
	}

	var wd *watchdog.Watchdog
	if cfg.auditFraction > 0 {
		wd = watchdog.New(watchdog.Config{
			AuditFraction: cfg.auditFraction,
			Metrics:       tracer.Registry(),
		})
		defer wd.Close()
	}

	engine := core.New(core.Config{
		Seed:        cfg.seed,
		Workers:     cfg.workers,
		CacheBytes:  int64(cfg.cacheMB) << 20,
		CacheTTL:    cfg.cacheTTL,
		Obs:         tracer,
		ObsConfig:   obsCfg,
		MetricsAddr: cfg.metricsAddr,
		EventLog:    elog,
		Watchdog:    wd,
		History:     hist,
		Alerts:      bus,
	})
	defer engine.Close()
	if err := loadData(engine, cfg); err != nil {
		return err
	}
	if addr, err := engine.MetricsEndpoint(); err != nil {
		return fmt.Errorf("metrics endpoint: %w", err)
	} else if addr != "" {
		fmt.Printf("aqpd: metrics http://%s/metrics\n", addr)
	}

	srv := serve.New(engine, serve.Config{
		MaxInFlight:   cfg.maxInFlight,
		MaxQueue:      cfg.maxQueue,
		Timeout:       cfg.timeout,
		MaxBootstrapK: cfg.maxK,
		MaxBatch:      cfg.maxBatch,
		BatchHold:     cfg.batchHold,
		Metrics:       tracer.Registry(),
		History:       hist,
		Alerts:        bus,
	})

	userTable, err := parseUsers(cfg.users)
	if err != nil {
		return err
	}

	// MySQL wire listener.
	var wl *wire.Listener
	if cfg.mysqlAddr != "" {
		ln, err := net.Listen("tcp", cfg.mysqlAddr)
		if err != nil {
			return fmt.Errorf("mysql listener: %w", err)
		}
		wcfg := wire.Config{
			MaxConns:  cfg.maxConns,
			MaxPacket: cfg.maxPacket,
			Metrics:   tracer.Registry(),
			EventLog:  elog,
		}
		if userTable != nil {
			wcfg.Auth = wire.NativePassword(userTable)
		}
		wl = wire.Serve(ln, srv, wcfg)
		fmt.Printf("aqpd: mysql listening on %s\n", wl.Addr())
	}

	// HTTP/JSON listener.
	var hs *http.Server
	if cfg.httpAddr != "" {
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("http listener: %w", err)
		}
		opt := serve.HTTPOptions{EventLog: elog}
		if userTable != nil {
			opt.Authorize = basicAuth(userTable)
		}
		hs = &http.Server{Handler: serve.NewHTTPHandler(srv, opt)}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aqpd: http serve:", err)
			}
		}()
		fmt.Printf("aqpd: http listening on %s\n", ln.Addr())
	}
	if wl == nil && hs == nil {
		return fmt.Errorf("both listeners disabled; nothing to serve")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("aqpd: %s, draining (budget %s)\n", s, cfg.drain)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	// Drain order: stop accepting wire connections and wake idle ones
	// first, then fail the admission queue (queued queries get a
	// retryable shutting-down error, busy connections surface it as ERR
	// 1053 / HTTP 503), then close the HTTP listener, and finally wait
	// for wire connections — force-closing stragglers at the budget.
	if wl != nil {
		wl.Drain()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aqpd: serve drain:", err)
	}
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "aqpd: http drain:", err)
		}
	}
	if wl != nil {
		if err := wl.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "aqpd: wire drain:", err)
		}
	}
	fmt.Println("aqpd: drained")
	return nil
}

// loadData registers the serving table: a CSV file, or the synthetic
// Sessions demo (same distributions as aqpshell's demo, sized by -gen).
func loadData(engine *core.Engine, cfg daemonConfig) error {
	if cfg.csvPath != "" {
		if cfg.colTypes == "" {
			return fmt.Errorf("-csv requires -coltypes")
		}
		var types []table.Type
		for _, tname := range strings.Split(cfg.colTypes, ",") {
			switch strings.ToLower(strings.TrimSpace(tname)) {
			case "float", "float64":
				types = append(types, table.Float64)
			case "int", "int64":
				types = append(types, table.Int64)
			case "string", "str":
				types = append(types, table.String)
			default:
				return fmt.Errorf("unknown column type %q", tname)
			}
		}
		f, err := os.Open(cfg.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tbl, err := table.ReadCSV(f, types)
		if err != nil {
			return err
		}
		if err := engine.RegisterTable(cfg.tblName, tbl); err != nil {
			return err
		}
		return buildSample(engine, cfg.tblName, tbl.NumRows(), cfg.sample)
	}

	rows := cfg.genRows
	if rows <= 0 {
		rows = 200000
	}
	src := rng.New(cfg.seed)
	times := make(table.Float64Col, rows)
	cities := make(table.StringCol, rows)
	kb := make(table.Float64Col, rows)
	names := []string{"NYC", "SF", "LA", "CHI", "SEA", "BOS"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < rows; i++ {
		cities[i] = names[zipf.Next()]
		times[i] = src.LogNormal(4, 0.6)
		kb[i] = src.Pareto(10000, 1.3) / 1000
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
		{Name: "KB", Type: table.Float64},
	}, times, cities, kb)
	if err := engine.RegisterTable("Sessions", tbl); err != nil {
		return err
	}
	fmt.Printf("aqpd: demo table Sessions(Time FLOAT64, City STRING, KB FLOAT64), %d rows\n", rows)
	return buildSample(engine, "Sessions", rows, cfg.sample)
}

func buildSample(engine *core.Engine, name string, rows, sample int) error {
	if sample == 0 {
		sample = rows / 10
	}
	if sample <= 0 || sample >= rows {
		fmt.Printf("aqpd: %s unsampled; queries run exactly\n", name)
		return nil
	}
	if err := engine.BuildSamples(name, sample); err != nil {
		return err
	}
	fmt.Printf("aqpd: sampled %s at %d rows\n", name, sample)
	return nil
}

// parseUsers decodes the -users flag into a user→password table.
func parseUsers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		user, pass, ok := strings.Cut(pair, ":")
		if !ok || user == "" {
			return nil, fmt.Errorf("bad -users entry %q (want user:password)", pair)
		}
		out[user] = pass
	}
	return out, nil
}

// basicAuth returns an HTTP authorize hook checking Basic credentials
// against the same user table the wire listener uses.
func basicAuth(users map[string]string) func(*http.Request) error {
	return func(r *http.Request) error {
		user, pass, ok := r.BasicAuth()
		if !ok {
			return fmt.Errorf("missing credentials")
		}
		if want, found := users[user]; !found || want != pass {
			return fmt.Errorf("bad credentials for user %s", strconv.Quote(user))
		}
		return nil
	}
}
