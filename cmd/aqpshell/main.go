// Command aqpshell is an interactive approximate-SQL shell over a built-in
// demo dataset: a Sessions table of user session times across cities,
// sampled BlinkDB-style. Every aggregate query returns an answer with
// error bars and a diagnostic verdict; rejected queries fall back to exact
// execution automatically.
//
//	$ aqpshell
//	aqp> SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'
//	avg = 60.13 ± 0.41 (95% CI, closed-form, diagnostic OK) [sample 100000 rows, 21ms]
//
// Commands:
//
//	\explain <sql>    show the logical plan
//	\exact <sql>      run on the full dataset
//	\bound <e> <sql>  answer within relative error e (escalates samples)
//	\time <s> <sql>   answer within a time budget of s seconds
//	\tables           list tables
//	\help             this text
//	\quit             exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/watchdog"
)

const demoRows = 1000000

func buildDemo(metricsAddr string, elog *obs.EventLog, audit float64, obsCfg obs.Config, profileDir string, cacheMB int) (*core.Engine, *watchdog.Watchdog, *history.Store, error) {
	src := rng.New(42)
	times := make(table.Float64Col, demoRows)
	cities := make(table.StringCol, demoRows)
	bytes := make(table.Float64Col, demoRows)
	names := []string{"NYC", "SF", "LA", "CHI", "SEA", "BOS"}
	zipf := rng.NewZipf(src, len(names), 1.1)
	for i := 0; i < demoRows; i++ {
		cities[i] = names[zipf.Next()]
		times[i] = src.LogNormal(4, 0.6)         // session seconds, median ~55s
		bytes[i] = src.Pareto(10000, 1.3) / 1000 // KB transferred, heavy tail
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
		{Name: "KB", Type: table.Float64},
	}, times, cities, bytes)

	tracer := obs.NewTracer(obsCfg)
	var wd *watchdog.Watchdog
	if audit > 0 {
		wd = watchdog.New(watchdog.Config{
			AuditFraction: audit,
			Metrics:       tracer.Registry(),
		})
	}
	var hist *history.Store
	if profileDir != "" {
		var err error
		hist, err = history.Open(profileDir, history.Options{
			Registry: tracer.Registry(),
			SLOs: []history.SLOSpec{
				{Name: "latency-p99", Kind: history.SLOLatency,
					Objective: 0.99, ThresholdMs: 1000},
				{Name: "coverage", Kind: history.SLOCoverage, Objective: 0.93},
				{Name: "availability", Kind: history.SLOAvailability, Objective: 0.999},
			},
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	cfg := core.Config{
		Seed:        42,
		Workers:     8,
		CacheBytes:  int64(cacheMB) << 20,
		Obs:         tracer,
		ObsConfig:   obsCfg,
		MetricsAddr: metricsAddr,
		EventLog:    elog,
		Watchdog:    wd,
		History:     hist,
	}
	if cacheMB > 0 {
		// Give the block layer something to do: compressed samples are
		// decode-bound, which is the workload the cache accelerates.
		// Answers are bit-identical across sample backings either way.
		cfg.SampleBacking = table.BackingCompressed
	}
	e := core.New(cfg)
	if err := e.RegisterTable("Sessions", tbl); err != nil {
		return nil, nil, nil, err
	}
	e.RegisterUDF("TRIMMEDMEAN", func(values, weights []float64) float64 {
		var m stats.Moments
		for i, v := range values {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			m.AddWeighted(v, w)
		}
		// Clamp influence of extremes by winsorizing at a fixed cap.
		var c stats.Moments
		cap95 := m.Mean() + 3*m.Stddev()
		for i, v := range values {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			if v > cap95 {
				v = cap95
			}
			c.AddWeighted(v, w)
		}
		return c.Mean()
	})
	if err := e.BuildSamples("Sessions", 10000, 100000); err != nil {
		return nil, nil, nil, err
	}
	return e, wd, hist, nil
}

func main() {
	explain := flag.Bool("explain", false,
		"print the per-stage trace (span tree and counters) after each query")
	metricsAddr := flag.String("metrics", "",
		"serve /metrics and /debug/queries on this address (e.g. 127.0.0.1:9090)")
	timeout := flag.Duration("timeout", 0,
		"per-query deadline (e.g. 500ms); past it the query is cancelled mid-pipeline and reports a deadline error")
	logFormat := flag.String("log", "",
		"structured query event log: 'json' writes one JSON record per query to stderr")
	audit := flag.Float64("audit", 0,
		"calibration watchdog: audit this fraction of queries exactly (e.g. 0.1; with -metrics, serves /debug/calibration)")
	profileDir := flag.String("profile", "",
		"persist query history to this directory and enable the \\profile workload summary (with -metrics, serves /debug/workload, /debug/slo, /debug/history)")
	historyPath := flag.String("history", "",
		"offline mode: replay a history segment file or directory from a dead process, print the workload summary, and exit")
	slowMs := flag.Float64("slowms", 0,
		"slow-query threshold in ms for the trace ring and event log (0 = 1000)")
	maxRelErr := flag.Float64("maxrelerr", 0,
		"event-log miscalibration threshold: flag aggregates whose relative error exceeds this (0 = off)")
	ringSize := flag.Int("ring", 0,
		"trace ring capacity for /debug/queries (0 = 64)")
	otlpURL := flag.String("otlp", "",
		"export query spans to this OTLP/HTTP collector endpoint")
	otlpFile := flag.String("otlp-file", "",
		"append OTLP JSON span batches to this file (combines with -otlp)")
	cacheMB := flag.Int("cache-mb", 0,
		"decoded-block/answer cache budget in MiB (0 = caching off; with -metrics, serves /debug/cache)")
	flag.Parse()

	obsCfg := obs.Config{RingSize: *ringSize, SlowQueryMs: *slowMs, MaxRelErr: *maxRelErr,
		ExportURL: *otlpURL, ExportPath: *otlpFile}

	if *historyPath != "" {
		if err := replayHistory(*historyPath); err != nil {
			fmt.Fprintln(os.Stderr, "aqpshell:", err)
			os.Exit(1)
		}
		return
	}

	var elog *obs.EventLog
	switch *logFormat {
	case "":
	case "json":
		elog = obs.NewEventLog(os.Stderr, obsCfg)
	default:
		fmt.Fprintf(os.Stderr, "aqpshell: unknown -log format %q (only 'json')\n", *logFormat)
		os.Exit(2)
	}

	fmt.Println("aqpshell — approximate query processing with reliable error bars")
	fmt.Println("demo table: Sessions(Time FLOAT64, City STRING, KB FLOAT64),",
		demoRows, "rows; samples: 10k, 100k")
	fmt.Println(`type \help for commands`)
	engine, wd, hist, err := buildDemo(*metricsAddr, elog, *audit, obsCfg, *profileDir, *cacheMB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqpshell:", err)
		os.Exit(1)
	}
	defer engine.Close()
	defer wd.Close()
	defer hist.Close()
	if addr, err := engine.MetricsEndpoint(); err != nil {
		fmt.Fprintln(os.Stderr, "aqpshell: metrics endpoint:", err)
		os.Exit(1)
	} else if addr != "" {
		fmt.Printf("metrics: http://%s/metrics  traces: http://%s/debug/queries\n", addr, addr)
		if wd != nil {
			fmt.Printf("calibration: http://%s/debug/calibration\n", addr)
		}
		if hist != nil {
			fmt.Printf("workload: http://%s/debug/workload  slo: http://%s/debug/slo  history: http://%s/debug/history\n",
				addr, addr, addr)
		}
	}

	// queryCtx applies the -timeout deadline to one query's execution.
	queryCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	// show prints an answer and, under -explain, the recorded span tree —
	// which includes the query's outcome and admission queue wait — plus
	// the final diagnostic verdict per aggregate.
	show := func(ans *core.Answer, err error) {
		printAnswer(ans, err)
		if !*explain {
			return
		}
		if t, ok := engine.Tracer().Last(); ok {
			fmt.Print(obs.FormatTrace(t))
		}
		if ans != nil {
			fmt.Println(verdictSummary(ans))
		}
		if s := cacheSummary(engine); s != "" {
			fmt.Println(s)
		}
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("aqp> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\quit` || line == `\q` || line == "exit":
			return
		case line == `\help`:
			fmt.Println(`  <sql>             approximate answer with error bars
  \explain <sql>    show the logical plan
  \exact <sql>      run on the full dataset
  \bound <e> <sql>  answer within relative error e
  \time <s> <sql>   answer within a time budget of s seconds
  \load <csv> <name> <types> [rows]  load a CSV table and sample it
  \tables           list tables
  \profile          workload profile summary (requires -profile <dir>)
  \quit             exit`)
		case line == `\profile`:
			if hist == nil {
				fmt.Println("no history store; start with -profile <dir>")
				continue
			}
			fmt.Print(history.FormatWorkload(hist.Profiles()))
			if s := cacheSummary(engine); s != "" {
				fmt.Println(s)
			}
		case strings.HasPrefix(line, `\load `):
			// \load <csv-path> <table-name> <type,type,...> [sample-rows]
			args := strings.Fields(strings.TrimPrefix(line, `\load `))
			if len(args) < 3 {
				fmt.Println(`usage: \load <csv> <name> <float|int|string,...> [sample-rows]`)
				continue
			}
			if err := loadCSV(engine, args); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\tables`:
			fmt.Println("  Sessions(Time FLOAT64, City STRING, KB FLOAT64) —",
				demoRows, "rows, samples 10k/100k; UDF: TRIMMEDMEAN(col)")
		case strings.HasPrefix(line, `\explain `):
			out, err := engine.Explain(strings.TrimPrefix(line, `\explain `))
			report(out, err)
		case strings.HasPrefix(line, `\exact `):
			ctx, cancel := queryCtx()
			ans, err := engine.RunExact(ctx, strings.TrimPrefix(line, `\exact `))
			cancel()
			show(ans, err)
		case strings.HasPrefix(line, `\time `):
			rest := strings.TrimPrefix(line, `\time `)
			fields := strings.SplitN(rest, " ", 2)
			if len(fields) != 2 {
				fmt.Println(`usage: \time <seconds> <sql>`)
				continue
			}
			secs, err := strconv.ParseFloat(fields[0], 64)
			if err != nil || secs <= 0 {
				fmt.Println("bad time budget:", fields[0])
				continue
			}
			ctx, cancel := queryCtx()
			ans, err := engine.RunWithTimeBudget(ctx, fields[1],
				time.Duration(secs*float64(time.Second)))
			cancel()
			show(ans, err)
		case strings.HasPrefix(line, `\bound `):
			rest := strings.TrimPrefix(line, `\bound `)
			fields := strings.SplitN(rest, " ", 2)
			if len(fields) != 2 {
				fmt.Println(`usage: \bound <relative-error> <sql>`)
				continue
			}
			bound, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				fmt.Println("bad bound:", err)
				continue
			}
			ctx, cancel := queryCtx()
			ans, err := engine.RunWithErrorBound(ctx, fields[1], bound)
			cancel()
			show(ans, err)
		default:
			ctx, cancel := queryCtx()
			ans, err := engine.Run(ctx, line)
			cancel()
			show(ans, err)
		}
	}
}

// replayHistory loads a history segment file (or a whole history
// directory) from a dead process and prints the same workload summary
// /debug/workload would have served.
func replayHistory(path string) error {
	profiles, segs, err := history.Replay(path)
	if err != nil {
		return err
	}
	records, skipped := 0, 0
	for _, s := range segs {
		records += s.Records
		if s.TailSkipped {
			skipped++
			fmt.Fprintf(os.Stderr, "aqpshell: %s: corrupt tail skipped: %s\n",
				s.Name, s.TailErr)
		}
	}
	fmt.Printf("replayed %d record(s) from %d segment(s)", records, len(segs))
	if skipped > 0 {
		fmt.Printf(" (%d corrupt tail(s) skipped)", skipped)
	}
	fmt.Println()
	fmt.Print(history.FormatWorkload(profiles))
	return nil
}

// loadCSV registers a CSV file as a table and builds a sample over it.
func loadCSV(engine *core.Engine, args []string) error {
	path, name := args[0], args[1]
	var types []table.Type
	for _, tname := range strings.Split(args[2], ",") {
		switch strings.ToLower(strings.TrimSpace(tname)) {
		case "float", "float64":
			types = append(types, table.Float64)
		case "int", "int64":
			types = append(types, table.Int64)
		case "string", "str":
			types = append(types, table.String)
		default:
			return fmt.Errorf("unknown column type %q", tname)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tbl, err := table.ReadCSV(f, types)
	if err != nil {
		return err
	}
	if err := engine.RegisterTable(name, tbl); err != nil {
		return err
	}
	sampleRows := tbl.NumRows() / 10
	if len(args) > 3 {
		if v, err := strconv.Atoi(args[3]); err == nil {
			sampleRows = v
		}
	}
	if sampleRows > 0 && sampleRows < tbl.NumRows() {
		if err := engine.BuildSamples(name, sampleRows); err != nil {
			return err
		}
		fmt.Printf("loaded %s: %d rows, sampled %d\n", name, tbl.NumRows(), sampleRows)
	} else {
		fmt.Printf("loaded %s: %d rows (no sample; queries run exactly)\n", name, tbl.NumRows())
	}
	return nil
}

func report(out string, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
}

func printAnswer(ans *core.Answer, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, g := range ans.Groups {
		prefix := ""
		if g.Key != "" {
			prefix = g.Key + ": "
		}
		for _, a := range g.Aggs {
			diag := "diagnostic OK"
			if !a.DiagnosticOK {
				diag = "diagnostic REJECTED → " + describeFallback(a)
			}
			if a.Exact && a.DiagnosticOK {
				fmt.Printf("%s%s = %.6g (exact)\n", prefix, a.Name, a.Estimate)
				continue
			}
			fmt.Printf("%s%s = %.6g ± %.3g (95%% CI, %s, %s)\n",
				prefix, a.Name, a.Estimate, a.ErrorBar.HalfWidth, a.Technique, diag)
		}
	}
	skipped := ""
	if ans.Counters.BlocksSkipped > 0 {
		skipped = fmt.Sprintf(", %d block(s) skipped", ans.Counters.BlocksSkipped)
	}
	if ans.Counters.CacheHits > 0 {
		skipped += fmt.Sprintf(", %d cached block(s)", ans.Counters.CacheHits)
	}
	if ans.Cached {
		fmt.Printf("[answer cache, %v]\n", ans.Elapsed.Round(1000))
	} else if ans.SampleRows > 0 {
		fmt.Printf("[sample %d rows, %v, %d scan(s)%s]\n",
			ans.SampleRows, ans.Elapsed.Round(1000), ans.Counters.Scans, skipped)
	} else {
		fmt.Printf("[full data, %v%s]\n", ans.Elapsed.Round(1000), skipped)
	}
}

// cacheSummary renders the engine's cache state for the -explain footer
// and the \profile summary; empty when caching is off.
func cacheSummary(engine *core.Engine) string {
	st := engine.CacheStatsSnapshot(3)
	if !st.Enabled {
		return ""
	}
	var b strings.Builder
	lookups := st.Block.Hits + st.Block.Misses
	rate := 0.0
	if lookups > 0 {
		rate = float64(st.Block.Hits) / float64(lookups)
	}
	fmt.Fprintf(&b, "cache: blocks %d/%d hits (%.0f%%), %s resident of %s budget, %d evicted; answers %d entries (%d replays); predicates %d memo hits",
		st.Block.Hits, lookups, rate*100, mib(st.Block.Bytes), mib(st.Block.Budget),
		st.Block.Evictions, st.Answer.Entries, st.Answer.Hits, st.Predicate.Hits)
	for _, t := range st.Tables {
		fmt.Fprintf(&b, "\n  hot: %s %.0f%% resident (%s of %s)",
			t.Name, t.HotFraction*100, mib(t.ResidentBytes), mib(t.LogicalBytes))
	}
	return b.String()
}

func mib(n int64) string {
	return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
}

// verdictSummary renders the final per-aggregate diagnostic verdicts for
// the -explain footer: "verdicts: AVG(Time)=accept, MAX(KB)=reject(exact)".
func verdictSummary(ans *core.Answer) string {
	var b strings.Builder
	b.WriteString("verdicts:")
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			b.WriteByte(' ')
			if g.Key != "" {
				b.WriteString(g.Key)
				b.WriteByte('/')
			}
			b.WriteString(a.Name)
			b.WriteByte('=')
			if a.DiagnosticOK {
				b.WriteString("accept")
			} else {
				b.WriteString("reject")
			}
			if a.Exact {
				b.WriteString("(exact)")
			}
		}
	}
	return b.String()
}

func describeFallback(a core.AggAnswer) string {
	if a.Exact {
		return "answered exactly"
	}
	return "approximation kept (fallback disabled)"
}
