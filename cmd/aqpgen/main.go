// Command aqpgen materializes the synthetic benchmark to disk: per-trace
// query manifests (JSON) and per-query data columns (CSV), playing the
// role of the public benchmark the paper's authors released in place of
// their proprietary traces.
//
//	aqpgen -out ./bench -trace facebook -queries 100 -rows 200000
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/workload"
)

// manifestEntry describes one generated query in the on-disk manifest.
type manifestEntry struct {
	ID           int     `json:"id"`
	Name         string  `json:"name"`
	Aggregate    string  `json:"aggregate"`
	Percentile   float64 `json:"percentile,omitempty"`
	UDF          string  `json:"udf,omitempty"`
	Distribution string  `json:"distribution"`
	Rows         int     `json:"rows"`
	BytesPerRow  int     `json:"bytes_per_row"`
	GroupFanout  int     `json:"group_fanout"`
	DataFile     string  `json:"data_file"`
	ClosedForm   bool    `json:"closed_form_ok"`
}

func main() {
	out := flag.String("out", "bench", "output directory")
	traceName := flag.String("trace", "facebook", "trace to mimic: facebook or conviva")
	queries := flag.Int("queries", 50, "number of queries")
	rows := flag.Int("rows", 100000, "population rows per query")
	seed := flag.Uint64("seed", 2014, "random seed")
	flag.Parse()

	var kind workload.Kind
	switch *traceName {
	case "facebook":
		kind = workload.Facebook
	case "conviva":
		kind = workload.Conviva
	default:
		fmt.Fprintf(os.Stderr, "aqpgen: unknown trace %q\n", *traceName)
		os.Exit(2)
	}

	trace := workload.Generate(workload.TraceConfig{
		Kind:                kind,
		NumQueries:          *queries,
		PopulationSize:      *rows,
		Seed:                *seed,
		AdversarialFraction: -1,
	})

	dir := filepath.Join(*out, kind.String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	manifest := make([]manifestEntry, 0, len(trace))
	for _, q := range trace {
		dataFile := fmt.Sprintf("q%04d.csv", q.ID)
		if err := writeCSV(filepath.Join(dir, dataFile), q.Population); err != nil {
			fatal(err)
		}
		manifest = append(manifest, manifestEntry{
			ID:           q.ID,
			Name:         q.Name(),
			Aggregate:    q.Query.Kind.String(),
			Percentile:   q.Query.Pct,
			UDF:          q.UDFName,
			Distribution: q.Dist.String(),
			Rows:         len(q.Population),
			BytesPerRow:  q.BytesPerRow,
			GroupFanout:  q.GroupFanout,
			DataFile:     dataFile,
			ClosedForm:   q.ClosedFormOK(),
		})
	}
	mf, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		fatal(err)
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		fatal(err)
	}
	fmt.Printf("aqpgen: wrote %d queries to %s\n", len(manifest), dir)
}

func writeCSV(path string, values []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"value"}); err != nil {
		return err
	}
	for _, v := range values {
		if err := w.Write([]string{strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpgen:", err)
	os.Exit(1)
}
