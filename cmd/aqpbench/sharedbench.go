package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/table"
)

// sharedPoint is one batch size of the shared-scan throughput sweep: the
// same offered load (B concurrent clients, one shared engine) served with
// batching off and with MaxBatch=B.
type sharedPoint struct {
	Batch int `json:"batch"`
	// QPSUnbatched / QPSBatched are completed queries per second.
	QPSUnbatched float64 `json:"qps_unbatched"`
	QPSBatched   float64 `json:"qps_batched"`
	// Speedup is batched over unbatched throughput at equal concurrency.
	Speedup float64 `json:"speedup"`
	// ScansUnbatched / ScansBatched count physical passes
	// (aqp_exec_scans_total deltas) each mode performed for the same
	// query count.
	ScansUnbatched int64 `json:"scans_unbatched"`
	ScansBatched   int64 `json:"scans_batched"`
}

// skipPoint is one selectivity of the zone-map pruning sweep on a
// zone-clustered registered table (exact path: samples are shuffled at
// build time, which destroys clustering, so pruning pays off on base
// tables).
type skipPoint struct {
	Selectivity   float64 `json:"selectivity"`
	BlocksTotal   int64   `json:"blocks_total"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	SkipFraction  float64 `json:"skip_fraction"`
	// MsZones / MsNoZones are per-query latencies with pruning on and off
	// (DisableZoneMaps), same data and query.
	MsZones   float64 `json:"ms_zones"`
	MsNoZones float64 `json:"ms_no_zones"`
}

// sharedBenchResult is the shared-scan fixture; it serializes to
// BENCH_shared_scan.json.
type sharedBenchResult struct {
	Rows       int           `json:"rows"`
	SampleRows int           `json:"sample_rows"`
	Queries    int           `json:"queries_per_point"`
	Points     []sharedPoint `json:"points"`

	SkipRows  int         `json:"skip_rows"`
	SkipSweep []skipPoint `json:"skip_sweep"`
}

// JSONName routes this result's machine-readable output to its own file.
func (*sharedBenchResult) JSONName() string { return "BENCH_shared_scan.json" }

// sharedBench measures the two halves of the shared-scan work: inter-query
// batching (one physical pass answers B queued queries) and intra-scan
// zone-map pruning (provably-empty blocks are never filtered).
func sharedBench(rows, sampleRows, queriesPerPoint, skipRows, seed int) *sharedBenchResult {
	res := &sharedBenchResult{
		Rows: rows, SampleRows: sampleRows, Queries: queriesPerPoint,
		SkipRows: skipRows,
	}
	sharedThroughput(res, rows, sampleRows, queriesPerPoint, seed)
	skipSweep(res, skipRows, seed)
	return res
}

// sharedThroughput drives the same query mix through the serving layer with
// batching off and on, at B concurrent clients per point. The mix has four
// distinct selective queries, so a full batch of 16 holds four distinct
// plans (one predicate/projection evaluation each in the shared pass) with
// four whole-plan duplicates apiece.
func sharedThroughput(res *sharedBenchResult, rows, sampleRows, queriesPerPoint, seed int) {
	src := rng.New(uint64(seed))
	times := make(table.Float64Col, rows)
	cities := make(table.StringCol, rows)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < rows; i++ {
		times[i] = src.LogNormal(4, 0.6)
		cities[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	tracer := obs.NewTracer(obs.Options{})
	// A small resample budget keeps the scan the dominant cost — the sweep
	// measures scan consolidation, not bootstrap throughput. Diagnostics
	// off so no member's exact fallback rescans. The engine's workers
	// parallelize the one shared pass the same way concurrent clients
	// parallelize the unbatched baseline across cores.
	eng := core.New(core.Config{Seed: uint64(seed), Workers: 4,
		BootstrapK: 4, SkipDiagnostics: true, Obs: tracer})
	if err := eng.RegisterTable("Sessions", tbl); err != nil {
		panic("aqpbench: " + err.Error())
	}
	if err := eng.BuildSamples("Sessions", sampleRows); err != nil {
		panic("aqpbench: " + err.Error())
	}
	mix := []string{
		"SELECT AVG(Time) FROM Sessions WHERE Time > 120",
		"SELECT SUM(Time), COUNT(*) FROM Sessions WHERE Time > 150",
		"SELECT AVG(Time) FROM Sessions WHERE Time > 100 AND Time < 140",
		"SELECT COUNT(*) FROM Sessions WHERE City = 'NYC' AND Time > 110",
	}
	scansTotal := func() int64 {
		return tracer.Registry().Counter("aqp_exec_scans_total", "").Value()
	}
	// The whole query set is offered at once — a saturated queue, the
	// regime shared scans exist for. MaxInFlight = B, so the admission
	// queue releases exactly one batch worth of queries at a time and
	// groups seal by fill, not by the hold timer.
	drive := func(maxBatch, inFlight int) (qps float64, scans int64) {
		srv := serve.New(eng, serve.Config{
			MaxInFlight: inFlight,
			MaxQueue:    queriesPerPoint,
			MaxBatch:    maxBatch,
			BatchHold:   2 * time.Millisecond,
		})
		before := scansTotal()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < queriesPerPoint; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := srv.Submit(context.Background(), mix[i%len(mix)]); err != nil {
					panic("aqpbench: " + err.Error())
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		if err := srv.Shutdown(context.Background()); err != nil {
			panic("aqpbench: " + err.Error())
		}
		return float64(queriesPerPoint) / elapsed, scansTotal() - before
	}

	for _, b := range []int{1, 4, 16, 64} {
		inFlight := b
		if inFlight < 4 {
			inFlight = 4
		}
		qps0, scans0 := drive(0, inFlight)
		qps1, scans1 := drive(b, inFlight)
		res.Points = append(res.Points, sharedPoint{
			Batch:          b,
			QPSUnbatched:   qps0,
			QPSBatched:     qps1,
			Speedup:        qps1 / qps0,
			ScansUnbatched: scans0,
			ScansBatched:   scans1,
		})
	}
}

// skipSweep queries a zone-clustered registered table (monotone Value
// column) at fixed selectivities, with zone maps on and off. The filtered
// range is contiguous, so a selectivity-s filter leaves ~(1-s) of the
// blocks provably empty.
func skipSweep(res *sharedBenchResult, n, seed int) {
	build := func(disable bool) *core.Engine {
		src := rng.New(uint64(seed) + 1)
		vals := make(table.Float64Col, n)
		for i := range vals {
			vals[i] = float64(i) + 0.5*src.Float64()
		}
		tbl := table.MustNew(table.Schema{{Name: "Value", Type: table.Float64}}, vals)
		eng := core.New(core.Config{Seed: uint64(seed), Workers: 1,
			DisableZoneMaps: disable})
		if err := eng.RegisterTable("Clustered", tbl); err != nil {
			panic("aqpbench: " + err.Error())
		}
		return eng
	}
	pruned, plain := build(false), build(true)
	timeQuery := func(eng *core.Engine, q string) (float64, *core.Answer) {
		// Warm once, then take the best of 3: block pruning changes the
		// work done, not its variance.
		var best float64
		var ans *core.Answer
		for rep := 0; rep < 4; rep++ {
			start := time.Now()
			a, err := eng.Query(q)
			if err != nil {
				panic("aqpbench: " + err.Error())
			}
			ms := float64(time.Since(start)) / float64(time.Millisecond)
			if rep == 0 {
				continue
			}
			if ans == nil || ms < best {
				best, ans = ms, a
			}
		}
		return best, ans
	}
	for _, sel := range []float64{0.01, 0.1, 0.5, 1.0} {
		q := fmt.Sprintf("SELECT AVG(Value), COUNT(*) FROM Clustered WHERE Value < %d",
			int(sel*float64(n)))
		msZ, ansZ := timeQuery(pruned, q)
		msP, _ := timeQuery(plain, q)
		total := int64((n + table.ZoneBlockRows - 1) / table.ZoneBlockRows)
		res.SkipSweep = append(res.SkipSweep, skipPoint{
			Selectivity:   sel,
			BlocksTotal:   total,
			BlocksSkipped: ansZ.Counters.BlocksSkipped,
			SkipFraction:  float64(ansZ.Counters.BlocksSkipped) / float64(total),
			MsZones:       msZ,
			MsNoZones:     msP,
		})
	}
}

// Render implements result.
func (r *sharedBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "shared-scan batching sweep (rows=%d, sample=%d, %d queries/point)\n",
		r.Rows, r.SampleRows, r.Queries)
	fmt.Fprintf(w, "  %-8s %12s %12s %9s %10s %10s\n",
		"batch", "qps off", "qps on", "speedup", "scans off", "scans on")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-8d %12.1f %12.1f %8.2fx %10d %10d\n",
			p.Batch, p.QPSUnbatched, p.QPSBatched, p.Speedup,
			p.ScansUnbatched, p.ScansBatched)
	}
	fmt.Fprintf(w, "zone-map pruning sweep (clustered table, %d rows)\n", r.SkipRows)
	fmt.Fprintf(w, "  %-12s %8s %9s %10s %10s %12s\n",
		"selectivity", "blocks", "skipped", "fraction", "ms zones", "ms no-zones")
	for _, p := range r.SkipSweep {
		fmt.Fprintf(w, "  %-12.2f %8d %9d %10.2f %10.3f %12.3f\n",
			p.Selectivity, p.BlocksTotal, p.BlocksSkipped, p.SkipFraction,
			p.MsZones, p.MsNoZones)
	}
}

// WriteCSV implements result.
func (r *sharedBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "batch,qps_unbatched,qps_batched,speedup,scans_unbatched,scans_batched"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%.2f,%.2f,%.3f,%d,%d\n",
			p.Batch, p.QPSUnbatched, p.QPSBatched, p.Speedup,
			p.ScansUnbatched, p.ScansBatched); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "selectivity,blocks_total,blocks_skipped,skip_fraction,ms_zones,ms_no_zones"); err != nil {
		return err
	}
	for _, p := range r.SkipSweep {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%.3f,%.3f,%.3f\n",
			p.Selectivity, p.BlocksTotal, p.BlocksSkipped, p.SkipFraction,
			p.MsZones, p.MsNoZones); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *sharedBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
