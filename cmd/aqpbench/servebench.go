package main

// The serve-e2e fixture: a load generator driving hundreds of concurrent
// socket connections — half MySQL wire, half HTTP/JSON — through a full
// in-process aqpd stack (serve admission + both listeners), measuring
// end-to-end latency where a client actually stands: TCP, framing,
// admission queue, engine, response encode. CI gates on the ≥100-conn
// point finishing with zero errors and p99 under the admission deadline.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/wire"
)

type servePoint struct {
	// Conns is total concurrent client connections (WireConns over the
	// MySQL listener + HTTPConns over keep-alive HTTP sockets).
	Conns     int `json:"conns"`
	WireConns int `json:"wire_conns"`
	HTTPConns int `json:"http_conns"`
	// QPS is completed queries per second across both transports.
	QPS    float64 `json:"qps"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// QueueWait percentiles come from the admission layer's histogram:
	// how long admitted queries waited for an execution slot.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// Errors counts failed queries (any transport); Rejected counts
	// admission-layer rejections. Both must be zero: the queue is sized
	// to the offered load.
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
}

// serveBenchResult serializes to BENCH_serve_e2e.json.
type serveBenchResult struct {
	Rows           int          `json:"rows"`
	SampleRows     int          `json:"sample_rows"`
	QueriesPerConn int          `json:"queries_per_conn"`
	DeadlineMs     float64      `json:"deadline_ms"`
	Points         []servePoint `json:"points"`
}

// JSONName routes this result's machine-readable output to its own file.
func (*serveBenchResult) JSONName() string { return "BENCH_serve_e2e.json" }

var serveBenchQueries = []string{
	"SELECT AVG(Time) FROM Sessions",
	"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'",
	"SELECT SUM(Time), COUNT(Time) FROM Sessions WHERE City = 'SF'",
	"SELECT AVG(Time) FROM Sessions GROUP BY City",
}

// serveBench sweeps concurrent connection counts through a full network
// stack on one shared engine. Each point gets a fresh admission server
// and listeners; the queue is sized to the connection count so a clean
// run rejects nothing.
func serveBench(rows, sampleRows, queriesPerConn int, connCounts []int, seed int) *serveBenchResult {
	src := rng.New(uint64(seed))
	times := make(table.Float64Col, rows)
	cities := make(table.StringCol, rows)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < rows; i++ {
		times[i] = src.LogNormal(4, 0.6)
		cities[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	eng := core.New(core.Config{Seed: uint64(seed)})
	defer eng.Close()
	if err := eng.RegisterTable("Sessions", tbl); err != nil {
		panic(err)
	}
	if err := eng.BuildSamples("Sessions", sampleRows); err != nil {
		panic(err)
	}

	const deadline = 30 * time.Second
	res := &serveBenchResult{
		Rows: rows, SampleRows: sampleRows, QueriesPerConn: queriesPerConn,
		DeadlineMs: float64(deadline.Milliseconds()),
	}
	for _, conns := range connCounts {
		res.Points = append(res.Points, serveBenchPoint(eng, conns, queriesPerConn, deadline))
	}
	return res
}

func serveBenchPoint(eng *core.Engine, conns, queriesPerConn int, deadline time.Duration) servePoint {
	reg := obs.NewRegistry()
	srv := serve.New(eng, serve.Config{
		MaxInFlight: 8,
		MaxQueue:    conns, // sized to the offered load: no rejections
		Timeout:     deadline,
		Metrics:     reg,
	})
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	wl := wire.Serve(wln, srv, wire.Config{MaxConns: conns + 8, Metrics: reg})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: serve.NewHTTPHandler(srv, serve.HTTPOptions{})}
	go hs.Serve(hln) //nolint:errcheck
	httpURL := "http://" + hln.Addr().String() + "/query"

	wireConns := conns / 2
	httpConns := conns - wireConns
	var (
		errs      atomic.Int64
		latMu     sync.Mutex
		latencies []float64
	)
	record := func(ms []float64) {
		latMu.Lock()
		latencies = append(latencies, ms...)
		latMu.Unlock()
	}

	// Connect everything first, then release all clients at once so the
	// point measures steady concurrent load, not a connection ramp.
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < wireConns; i++ {
		cli, err := wire.Dial(wln.Addr().String(), wire.ClientOptions{
			User: "bench", Timeout: deadline + 10*time.Second})
		if err != nil {
			panic(fmt.Sprintf("serve-e2e: wire dial %d: %v", i, err))
		}
		wg.Add(1)
		go func(i int, cli *wire.Client) {
			defer wg.Done()
			defer cli.Close()
			<-start
			ms := make([]float64, 0, queriesPerConn)
			for q := 0; q < queriesPerConn; q++ {
				sql := serveBenchQueries[(i+q)%len(serveBenchQueries)]
				t0 := time.Now()
				if _, err := cli.Query(sql); err != nil {
					errs.Add(1)
					continue
				}
				ms = append(ms, float64(time.Since(t0).Microseconds())/1000)
			}
			record(ms)
		}(i, cli)
	}
	for i := 0; i < httpConns; i++ {
		// A dedicated transport per client so each goroutine holds its
		// own TCP socket for the whole point (keep-alive, pool of one).
		tr := &http.Transport{MaxIdleConns: 1, MaxIdleConnsPerHost: 1}
		hc := &http.Client{Transport: tr, Timeout: deadline + 10*time.Second}
		wg.Add(1)
		go func(i int, hc *http.Client, tr *http.Transport) {
			defer wg.Done()
			defer tr.CloseIdleConnections()
			<-start
			ms := make([]float64, 0, queriesPerConn)
			for q := 0; q < queriesPerConn; q++ {
				sql := serveBenchQueries[(i+q)%len(serveBenchQueries)]
				body, _ := json.Marshal(serve.QueryRequest{SQL: sql})
				t0 := time.Now()
				resp, err := hc.Post(httpURL, "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				ms = append(ms, float64(time.Since(t0).Microseconds())/1000)
			}
			record(ms)
		}(i, hc, tr)
	}

	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	// Tear the point's stack down before reading the counters.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wl.Drain()
	srv.Shutdown(ctx) //nolint:errcheck
	hs.Shutdown(ctx)  //nolint:errcheck
	wl.Shutdown(ctx)  //nolint:errcheck

	var rejected int64
	for _, c := range reg.CounterSamples() {
		if c.Name == "aqp_serve_rejected_total" || c.Name == "aqp_conn_rejected_total" {
			rejected += c.Value
		}
	}
	var qwP50, qwP99 float64
	for _, h := range reg.HistogramStats() {
		if h.Name == "aqp_serve_queue_wait_seconds" {
			qwP50, qwP99 = h.P50*1000, h.P99*1000
		}
	}
	p := servePoint{
		Conns: conns, WireConns: wireConns, HTTPConns: httpConns,
		MeanMs:         mean(latencies),
		P50Ms:          servePctl(latencies, 0.50),
		P99Ms:          servePctl(latencies, 0.99),
		QueueWaitP50Ms: qwP50,
		QueueWaitP99Ms: qwP99,
		Errors:         errs.Load(),
		Rejected:       rejected,
	}
	if elapsed > 0 {
		p.QPS = float64(len(latencies)) / elapsed.Seconds()
	}
	return p
}

// servePctl is the q-quantile of xs (nearest-rank on a sorted copy).
func servePctl(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Render implements result.
func (r *serveBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "serve-e2e network sweep (rows=%d, sample=%d, %d queries/conn, deadline %.0fms)\n",
		r.Rows, r.SampleRows, r.QueriesPerConn, r.DeadlineMs)
	fmt.Fprintf(w, "  %-6s %5s %5s %10s %9s %9s %9s %8s %8s %7s %8s\n",
		"conns", "wire", "http", "qps", "mean ms", "p50 ms", "p99 ms", "qw p50", "qw p99", "errors", "rejected")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-6d %5d %5d %10.1f %9.2f %9.2f %9.2f %8.2f %8.2f %7d %8d\n",
			p.Conns, p.WireConns, p.HTTPConns, p.QPS, p.MeanMs, p.P50Ms, p.P99Ms,
			p.QueueWaitP50Ms, p.QueueWaitP99Ms, p.Errors, p.Rejected)
	}
}

// WriteCSV implements result.
func (r *serveBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "conns,wire_conns,http_conns,qps,mean_ms,p50_ms,p99_ms,queue_wait_p50_ms,queue_wait_p99_ms,errors,rejected"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d\n",
			p.Conns, p.WireConns, p.HTTPConns, p.QPS, p.MeanMs, p.P50Ms, p.P99Ms,
			p.QueueWaitP50Ms, p.QueueWaitP99Ms, p.Errors, p.Rejected); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *serveBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
