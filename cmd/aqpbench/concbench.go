package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/table"
)

// concPoint is one worker count of the concurrent-serving sweep.
type concPoint struct {
	Workers int `json:"workers"`
	// QPS is completed queries per second at this concurrency.
	QPS float64 `json:"qps"`
	// MeanMs / P95Ms summarize per-query latency.
	MeanMs float64 `json:"mean_ms"`
	P95Ms  float64 `json:"p95_ms"`
	// Speedup is QPS relative to one worker.
	Speedup float64 `json:"speedup"`
	// Rejected counts queue-full rejections (0 unless the queue bound is
	// exceeded by the offered load).
	Rejected int `json:"rejected"`
}

// concBenchResult is the concurrency fixture: throughput vs worker count
// for a mixed workload pushed through the admission-controlled server on
// one shared engine. It serializes to BENCH_concurrency.json.
type concBenchResult struct {
	Rows       int         `json:"rows"`
	SampleRows int         `json:"sample_rows"`
	Queries    int         `json:"queries_per_point"`
	Points     []concPoint `json:"points"`
}

// JSONName routes this result's machine-readable output to its own file.
func (*concBenchResult) JSONName() string { return "BENCH_concurrency.json" }

// concBench measures end-to-end serving throughput as client concurrency
// grows: the same engine, the same mixed query set, 1..maxWorkers
// concurrent clients behind an admission limit equal to the client count
// (so the queue never rejects and the sweep isolates engine scaling).
func concBench(rows, sampleRows, queriesPerPoint, seed int) *concBenchResult {
	src := rng.New(uint64(seed))
	times := make(table.Float64Col, rows)
	cities := make(table.StringCol, rows)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < rows; i++ {
		times[i] = src.LogNormal(4, 0.6)
		cities[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	// One internal worker per query: the sweep measures cross-query
	// scaling through the admission layer, not intra-query parallelism.
	eng := core.New(core.Config{Seed: uint64(seed), Workers: 1,
		Obs: obs.NewTracer(obs.Options{})})
	if err := eng.RegisterTable("Sessions", tbl); err != nil {
		panic("aqpbench: " + err.Error())
	}
	if err := eng.BuildSamples("Sessions", sampleRows); err != nil {
		panic("aqpbench: " + err.Error())
	}
	mix := []string{
		"SELECT AVG(Time) FROM Sessions",
		"SELECT SUM(Time), COUNT(*) FROM Sessions WHERE Time > 50",
		"SELECT PERCENTILE(Time, 0.9) FROM Sessions",
		"SELECT City, AVG(Time) FROM Sessions GROUP BY City",
	}

	res := &concBenchResult{Rows: rows, SampleRows: sampleRows, Queries: queriesPerPoint}
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		srv := serve.New(eng, serve.Config{MaxInFlight: workers, MaxQueue: workers * 4})
		lat := make([]float64, queriesPerPoint)
		rejected := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		next := make(chan int)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					qstart := time.Now()
					_, err := srv.Submit(context.Background(), mix[i%len(mix)])
					ms := float64(time.Since(qstart)) / float64(time.Millisecond)
					mu.Lock()
					if err != nil {
						rejected++
					} else {
						lat[i] = ms
					}
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < queriesPerPoint; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		if err := srv.Shutdown(context.Background()); err != nil {
			panic("aqpbench: " + err.Error())
		}
		qps := float64(queriesPerPoint-rejected) / elapsed
		if workers == 1 {
			base = qps
		}
		res.Points = append(res.Points, concPoint{
			Workers:  workers,
			QPS:      qps,
			MeanMs:   mean(lat),
			P95Ms:    p95(lat),
			Speedup:  qps / base,
			Rejected: rejected,
		})
	}
	return res
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func p95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion-sorted copy; the point count is small.
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(0.95 * float64(len(sorted)-1))
	return sorted[idx]
}

// Render implements result.
func (r *concBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "concurrent serving sweep (rows=%d, sample=%d, %d queries/point)\n",
		r.Rows, r.SampleRows, r.Queries)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %9s %9s\n",
		"workers", "qps", "mean ms", "p95 ms", "speedup", "rejected")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-10d %10.1f %10.2f %10.2f %8.2fx %9d\n",
			p.Workers, p.QPS, p.MeanMs, p.P95Ms, p.Speedup, p.Rejected)
	}
}

// WriteCSV implements result.
func (r *concBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "workers,qps,mean_ms,p95_ms,speedup,rejected"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%.2f,%.3f,%.3f,%.3f,%d\n",
			p.Workers, p.QPS, p.MeanMs, p.P95Ms, p.Speedup, p.Rejected); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *concBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
