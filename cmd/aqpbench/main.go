// Command aqpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aqpbench -fig all            # every experiment, quick configuration
//	aqpbench -fig 3 -full        # Fig. 3 at paper-faithful scale
//	aqpbench -fig 8c -seed 7     # latency vs parallelism sweep
//	aqpbench -fig all -csv out/  # also write plot-ready CSV per figure
//
// Figures: 1, 3 (includes the §3 table), 4b, 4c, 7, 8ab, 8c, 8d, 8ef, 9,
// ablation, stages (the traced per-stage latency breakdown, which writes
// machine-readable BENCH_stages.json), obs-overhead (per-query latency
// with telemetry off vs spans vs spans+event-log vs spans+watchdog vs
// spans+history vs spans+export — the last posting OTLP batches to a
// local stub collector — interleaved round-robin after a shared warmup
// so run order cannot bias the baseline; writes BENCH_obs_overhead.json),
// kernel (the §5.3.1 loop-order
// ablation, which also writes machine-readable BENCH_kernel.json), and
// concurrency (serving throughput vs client count through the admission
// layer, which writes machine-readable BENCH_concurrency.json), and
// shared-scan (inter-query batched throughput vs batch size plus the
// zone-map block-skipping sweep, which writes machine-readable
// BENCH_shared_scan.json), and storage (per-backing footprint, exact-scan
// throughput, and the sample-query latency-vs-data-volume sweep, which
// writes machine-readable BENCH_storage.json), and history (the durable
// telemetry store's write-path overhead, append throughput per fsync
// policy, replay scaling, and workload-profile convergence, which writes
// machine-readable BENCH_history.json), and serve-e2e (the network
// front-end load sweep: hundreds of concurrent MySQL-wire and HTTP
// connections driven through a full in-process aqpd stack, which writes
// machine-readable BENCH_serve_e2e.json), and cache (the cross-query
// decoded-block/answer cache: repeat-query speedup and hit-rate ramp with
// the budget above the hot working set, bit-exactness and graceful
// degradation with the budget far below it, which writes machine-readable
// BENCH_cache.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

// result is any experiment output: renderable as text and exportable as
// CSV.
type result interface {
	Render(w io.Writer)
	WriteCSV(w io.Writer) error
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 3, 4b, 4c, 7, 8ab, 8c, 8d, 8ef, 9, ablation, stages, kernel, concurrency, all")
	full := flag.Bool("full", false, "run at paper-faithful scale (slow)")
	seed := flag.Uint64("seed", 2014, "random seed")
	queries := flag.Int("queries", 0, "override queries per set")
	workers := flag.Int("workers", 0, "override worker count")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	benchJSON := flag.String("benchjson", "BENCH_kernel.json", "output path for the kernel benchmark's machine-readable results")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	if *queries > 0 {
		cfg.QueriesPerSet = *queries
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	runners := map[string]func() result{
		"1":            func() result { return experiments.Fig1(cfg) },
		"3":            func() result { return experiments.Fig3(cfg) },
		"4b":           func() result { return experiments.Fig4b(cfg) },
		"4c":           func() result { return experiments.Fig4c(cfg) },
		"7":            func() result { return experiments.Fig7(cfg) },
		"8ab":          func() result { return experiments.Fig8ab(cfg) },
		"8c":           func() result { return experiments.Fig8c(cfg) },
		"8d":           func() result { return experiments.Fig8d(cfg) },
		"8ef":          func() result { return experiments.Fig8ef(cfg) },
		"9":            func() result { return experiments.Fig9(cfg) },
		"ablation":     func() result { return experiments.DiagnosticAblation(cfg) },
		"stages":       func() result { return experiments.Stages(cfg) },
		"obs-overhead": func() result { return experiments.ObsOverhead(cfg) },
		"history":      func() result { return experiments.HistoryBench(cfg) },
		"kernel": func() result {
			n, iters := 100000, 3
			if *full {
				n, iters = 1000000, 5
			}
			return kernelBench(n, 100, iters, int(cfg.Seed))
		},
		"concurrency": func() result {
			rows, sample, per := 100000, 10000, 32
			if *full {
				rows, sample, per = 1000000, 100000, 256
			}
			if *queries > 0 {
				per = *queries
			}
			return concBench(rows, sample, per, int(cfg.Seed))
		},
		"shared-scan": func() result {
			rows, sample, per, skipRows := 200000, 100000, 192, 256*1024
			if *full {
				rows, sample, per, skipRows = 2000000, 1000000, 512, 4*1024*1024
			}
			if *queries > 0 {
				per = *queries
			}
			return sharedBench(rows, sample, per, skipRows, int(cfg.Seed))
		},
		"storage": func() result {
			rows, sample := 100000, 16384
			if *full {
				rows, sample = 1000000, 100000
			}
			return storageBench(rows, sample, int(cfg.Seed))
		},
		"cache": func() result {
			rows, sample, rounds := 100000, 16384, 6
			if *full {
				rows, sample, rounds = 1000000, 100000, 8
			}
			return cacheBench(rows, sample, rounds, int(cfg.Seed))
		},
		"serve-e2e": func() result {
			rows, sample, perConn := 100000, 10000, 4
			connCounts := []int{16, 64, 128}
			if *full {
				rows, sample, perConn = 1000000, 100000, 8
				connCounts = []int{32, 128, 256}
			}
			if *queries > 0 {
				perConn = *queries
			}
			return serveBench(rows, sample, perConn, connCounts, int(cfg.Seed))
		},
	}
	order := []string{"1", "3", "4b", "4c", "7", "8ab", "8c", "8d", "8ef", "9", "ablation", "stages", "obs-overhead", "history", "kernel", "concurrency", "shared-scan", "storage", "cache", "serve-e2e"}

	var selected []string
	switch strings.ToLower(*fig) {
	case "all":
		selected = order
	default:
		key := strings.ToLower(strings.TrimPrefix(*fig, "fig"))
		// Accept the paper's sub-figure labels too.
		aliases := map[string]string{
			"7a": "7", "7b": "7", "8a": "8ab", "8b": "8ab",
			"8e": "8ef", "8f": "8ef", "9a": "9", "9b": "9", "s3": "3",
		}
		if a, ok := aliases[key]; ok {
			key = a
		}
		if _, ok := runners[key]; !ok {
			fmt.Fprintf(os.Stderr, "aqpbench: unknown figure %q (want one of %v)\n",
				*fig, order)
			os.Exit(2)
		}
		selected = []string{key}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "aqpbench:", err)
			os.Exit(1)
		}
	}

	for _, key := range selected {
		start := time.Now()
		res := runners[key]()
		res.Render(os.Stdout)
		if jr, ok := res.(interface{ WriteJSON(io.Writer) error }); ok && *benchJSON != "" {
			jsonPath := *benchJSON
			// Results carrying their own file name (the stage-trace export)
			// keep distinct outputs when several JSON figures run in one
			// invocation.
			if named, ok := res.(interface{ JSONName() string }); ok {
				jsonPath = named.JSONName()
			}
			f, err := os.Create(jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			if err := jr.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			fmt.Printf("[json written to %s]\n", jsonPath)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+key+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			if err := res.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aqpbench:", err)
				os.Exit(1)
			}
			fmt.Printf("[csv written to %s]\n", path)
		}
		fmt.Printf("[fig %s regenerated in %v]\n\n", key, time.Since(start).Round(time.Millisecond))
	}
}
