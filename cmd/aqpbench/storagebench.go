package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/table"
)

// footprintPoint is one backing's storage cost for the same logical table.
type footprintPoint struct {
	Backing string `json:"backing"`
	// LogicalBytes is the backing-invariant uncompressed size; the
	// footprint ratio is logical over physical.
	LogicalBytes  int64   `json:"logical_bytes"`
	PhysicalBytes int64   `json:"physical_bytes"`
	Ratio         float64 `json:"ratio"`
}

// scanPoint is one backing's exact full-scan cost on the base table:
// the decode tax (or, with zone maps, the decode savings) made visible.
type scanPoint struct {
	Backing    string  `json:"backing"`
	MsPerScan  float64 `json:"ms_per_scan"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// BlocksDecoded meters lazy decode work (0 on the raw backing).
	BlocksDecoded int64 `json:"blocks_decoded"`
}

// volumePoint is one (scale, backing) cell of the latency-vs-data-volume
// sweep: the base table grows, the sample stays fixed, and sample-query
// latency must stay flat — that is the tentpole's headline claim.
type volumePoint struct {
	Scale   int    `json:"scale"`
	Rows    int    `json:"rows"`
	Backing string `json:"backing"`
	// MsSampleQuery is best-of-5 latency of an approximate query answered
	// entirely from the (fixed-size) sample.
	MsSampleQuery float64 `json:"ms_sample_query"`
	// ResidentBytes is the registered base table's physical footprint at
	// this scale — the axis compression actually moves.
	ResidentBytes int64 `json:"resident_bytes"`
}

// storageBenchResult is the storage fixture; it serializes to
// BENCH_storage.json.
type storageBenchResult struct {
	Rows       int              `json:"rows"`
	SampleRows int              `json:"sample_rows"`
	Footprint  []footprintPoint `json:"footprint"`
	Scan       []scanPoint      `json:"scan"`
	Volume     []volumePoint    `json:"volume"`
	// LatencyRatio is the compressed backing's sample-query latency at the
	// largest scale over the smallest — the "flat latency" number CI gates.
	LatencyRatio float64 `json:"latency_ratio"`
}

// JSONName routes this result's machine-readable output to its own file.
func (*storageBenchResult) JSONName() string { return "BENCH_storage.json" }

// storageTable builds the bench's base table: a lognormal latency column,
// an integral-float bytes column, a small-range int64 user id, and a
// low-cardinality city string — the column shapes the per-block codecs
// (XOR, int-packing, FOR/dict, string dict) are chosen for.
func storageTable(n, seed int) *table.Table {
	src := rng.New(uint64(seed))
	times := make(table.Float64Col, n)
	bytesC := make(table.Float64Col, n)
	users := make(table.Int64Col, n)
	cities := make(table.StringCol, n)
	names := []string{"NYC", "SF", "LA", "CHI", "LDN", "TYO"}
	for i := 0; i < n; i++ {
		times[i] = src.LogNormal(4, 0.6)
		bytesC[i] = float64(src.Intn(1 << 20))
		users[i] = int64(src.Intn(1000))
		cities[i] = names[src.Intn(len(names))]
	}
	return table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "bytes", Type: table.Float64},
		{Name: "user", Type: table.Int64},
		{Name: "City", Type: table.String},
	}, times, bytesC, users, cities)
}

// storageBench measures the three storage axes: footprint per backing,
// exact full-scan throughput per backing, and sample-query latency as the
// base table scales to 10x with the sample size held fixed.
func storageBench(rows, sampleRows, seed int) *storageBenchResult {
	res := &storageBenchResult{Rows: rows, SampleRows: sampleRows}
	raw := storageTable(rows, seed)
	comp := table.Compress(raw)

	dir, err := os.MkdirTemp("", "aqpbench-storage")
	if err != nil {
		panic("aqpbench: " + err.Error())
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "base.aqps")
	if err := table.WriteStore(storePath, raw); err != nil {
		panic("aqpbench: " + err.Error())
	}
	mapped, closer, err := table.OpenStore(storePath)
	if err != nil {
		panic("aqpbench: " + err.Error())
	}
	defer closer.Close()
	fi, err := os.Stat(storePath)
	if err != nil {
		panic("aqpbench: " + err.Error())
	}

	logical := raw.SizeBytes()
	for _, p := range []struct {
		name string
		phys int64
	}{
		{"raw", raw.PhysicalSizeBytes()},
		{"compressed", comp.PhysicalSizeBytes()},
		{"mmap", fi.Size()}, // file bytes: block payloads plus metadata
	} {
		res.Footprint = append(res.Footprint, footprintPoint{
			Backing:       p.name,
			LogicalBytes:  logical,
			PhysicalBytes: p.phys,
			Ratio:         float64(logical) / float64(p.phys),
		})
	}

	// Exact full-scan throughput: no samples registered, so the query runs
	// on the base table and pays (or dodges, via zone maps) the decode.
	scanQ := "SELECT AVG(Time), SUM(bytes), COUNT(*) FROM T WHERE user < 800"
	for _, v := range []struct {
		name string
		tbl  *table.Table
	}{{"raw", raw}, {"compressed", comp}, {"mmap", mapped}} {
		eng := core.New(core.Config{Seed: uint64(seed), Workers: 4})
		if err := eng.RegisterTable("T", v.tbl); err != nil {
			panic("aqpbench: " + err.Error())
		}
		ms, ans := bestOf(5, func() *core.Answer {
			a, err := eng.Query(scanQ)
			if err != nil {
				panic("aqpbench: " + err.Error())
			}
			return a
		})
		res.Scan = append(res.Scan, scanPoint{
			Backing:       v.name,
			MsPerScan:     ms,
			RowsPerSec:    float64(rows) / (ms / 1e3),
			BlocksDecoded: ans.Counters.BlocksDecoded,
		})
	}

	// Latency vs data volume at fixed sample size. Samples are drawn raw
	// (they are small); only the base table's backing changes. The sample
	// query never touches the base table, so latency must stay flat while
	// resident bytes grow 10x (raw) or much less (compressed).
	sampleQ := "SELECT AVG(Time), COUNT(*) FROM T WHERE City = 'NYC'"
	var first, last float64
	for _, scale := range []int{1, 2, 5, 10} {
		n := rows * scale
		base := storageTable(n, seed)
		for _, backing := range []table.Backing{table.BackingRaw, table.BackingCompressed} {
			// Diagnostics off: the sweep measures sample-scan latency, and a
			// diagnostic rejection's exact fallback would rescan the base
			// table — a different experiment (the scan sweep above).
			eng := core.New(core.Config{Seed: uint64(seed), Workers: 4,
				BootstrapK: 20, SkipDiagnostics: true, Backing: backing})
			if err := eng.RegisterTable("T", base); err != nil {
				panic("aqpbench: " + err.Error())
			}
			if err := eng.BuildSamples("T", sampleRows); err != nil {
				panic("aqpbench: " + err.Error())
			}
			ms, _ := bestOf(5, func() *core.Answer {
				a, err := eng.Query(sampleQ)
				if err != nil {
					panic("aqpbench: " + err.Error())
				}
				return a
			})
			var resident int64
			if backing == table.BackingCompressed {
				resident = table.Compress(base).PhysicalSizeBytes()
				if scale == 1 {
					first = ms
				}
				if scale == 10 {
					last = ms
				}
			} else {
				resident = base.PhysicalSizeBytes()
			}
			res.Volume = append(res.Volume, volumePoint{
				Scale:         scale,
				Rows:          n,
				Backing:       backing.String(),
				MsSampleQuery: ms,
				ResidentBytes: resident,
			})
		}
	}
	if first > 0 {
		res.LatencyRatio = last / first
	}
	return res
}

// bestOf runs fn reps times after one warmup and returns the fastest
// latency in milliseconds with the answer it produced.
func bestOf(reps int, fn func() *core.Answer) (float64, *core.Answer) {
	var best float64
	var ans *core.Answer
	for i := 0; i <= reps; i++ {
		start := time.Now()
		a := fn()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 {
			continue // warmup
		}
		if ans == nil || ms < best {
			best, ans = ms, a
		}
	}
	return best, ans
}

// Render implements result.
func (r *storageBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "storage footprint (rows=%d)\n", r.Rows)
	fmt.Fprintf(w, "  %-12s %14s %14s %8s\n", "backing", "logical", "physical", "ratio")
	for _, p := range r.Footprint {
		fmt.Fprintf(w, "  %-12s %14d %14d %7.2fx\n",
			p.Backing, p.LogicalBytes, p.PhysicalBytes, p.Ratio)
	}
	fmt.Fprintln(w, "exact full-scan throughput")
	fmt.Fprintf(w, "  %-12s %10s %14s %10s\n", "backing", "ms/scan", "rows/s", "decoded")
	for _, p := range r.Scan {
		fmt.Fprintf(w, "  %-12s %10.3f %14.0f %10d\n",
			p.Backing, p.MsPerScan, p.RowsPerSec, p.BlocksDecoded)
	}
	fmt.Fprintf(w, "sample-query latency vs data volume (sample=%d rows, fixed)\n", r.SampleRows)
	fmt.Fprintf(w, "  %-7s %10s %-12s %12s %14s\n",
		"scale", "rows", "backing", "ms/query", "resident")
	for _, p := range r.Volume {
		fmt.Fprintf(w, "  %-7d %10d %-12s %12.3f %14d\n",
			p.Scale, p.Rows, p.Backing, p.MsSampleQuery, p.ResidentBytes)
	}
	fmt.Fprintf(w, "  latency ratio 10x/1x (compressed): %.3f\n", r.LatencyRatio)
}

// WriteCSV implements result.
func (r *storageBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "backing,logical_bytes,physical_bytes,ratio"); err != nil {
		return err
	}
	for _, p := range r.Footprint {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.3f\n",
			p.Backing, p.LogicalBytes, p.PhysicalBytes, p.Ratio); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "scale,rows,backing,ms_sample_query,resident_bytes"); err != nil {
		return err
	}
	for _, p := range r.Volume {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%.3f,%d\n",
			p.Scale, p.Rows, p.Backing, p.MsSampleQuery, p.ResidentBytes); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *storageBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
