package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/kernel"
	"repro/internal/resample"
	"repro/internal/rng"
)

// kernelVariant is one timed loop-order variant of the multi-resample
// aggregation benchmark.
type kernelVariant struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is relative to the resample-major baseline.
	Speedup float64 `json:"speedup"`
}

// diagTiming is one worker count of the parallel diagnostic sweep.
type diagTiming struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// kernelBenchResult is the §5.3.1 kernel micro-benchmark: the loop-order
// ablation (resample-major vs blocked-fused vs blocked-generic) and the
// diagnostic worker sweep. It serializes to BENCH_kernel.json for
// machine consumption alongside the usual text/CSV rendering.
type kernelBenchResult struct {
	N          int             `json:"n"`
	K          int             `json:"k"`
	BlockSize  int             `json:"block_size"`
	Variants   []kernelVariant `json:"variants"`
	Diagnostic []diagTiming    `json:"diagnostic"`
}

// timeOp runs fn iters times and returns the mean ns/op.
func timeOp(iters int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// kernelBench measures the fused kernel against the naive resample-major
// layout on n values and k resamples, then sweeps diagnostic.Run's Workers
// knob on the same data.
func kernelBench(n, k, iters, seed int) *kernelBenchResult {
	src := rng.New(uint64(seed))
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 + 10*src.NormFloat64()
	}
	q := estimator.Query{Kind: estimator.Avg}
	res := &kernelBenchResult{N: n, K: k, BlockSize: kernel.BlockSize}

	var sink float64
	baseline := timeOp(iters, func(i int) {
		s := rng.New(uint64(i))
		for r := 0; r < k; r++ {
			w := resample.PoissonWeights(s, n)
			sink += q.EvalWeighted(values, w)
		}
	})
	fused := timeOp(iters, func(i int) {
		sums := kernel.FusedSums(context.Background(), values, k, uint64(i), 1, 1)
		for r := 0; r < k; r++ {
			sink += q.FinalizeFused(sums.WX[r], sums.W[r], n)
		}
	})
	generic := timeOp(iters, func(i int) {
		ests, _ := kernel.Generic(context.Background(), values, k, uint64(i), 1, 1, q.EvalWeighted)
		sink += ests[0]
	})
	if sink == 0 {
		panic("aqpbench: degenerate kernel benchmark")
	}
	res.Variants = []kernelVariant{
		{Name: "resample-major", NsPerOp: baseline, Speedup: 1},
		{Name: "blocked-fused", NsPerOp: fused, Speedup: baseline / fused},
		{Name: "blocked-generic", NsPerOp: generic, Speedup: baseline / generic},
	}

	var serial float64
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := diagnostic.DefaultConfig(n)
		cfg.Workers = workers
		w := workers
		ns := timeOp(iters, func(i int) {
			out, err := diagnostic.Run(context.Background(), rng.New(uint64(i)), values, q,
				estimator.Bootstrap{K: k}, cfg)
			if err != nil {
				panic("aqpbench: " + err.Error())
			}
			_ = out
		})
		if w == 1 {
			serial = ns
		}
		res.Diagnostic = append(res.Diagnostic,
			diagTiming{Workers: w, NsPerOp: ns, Speedup: serial / ns})
	}
	return res
}

// Render implements result.
func (r *kernelBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "§5.3.1 kernel ablation (n=%d, K=%d, block=%d values)\n",
		r.N, r.K, r.BlockSize)
	fmt.Fprintf(w, "  %-18s %14s %9s\n", "variant", "ms/op", "speedup")
	for _, v := range r.Variants {
		fmt.Fprintf(w, "  %-18s %14.2f %8.2fx\n", v.Name, v.NsPerOp/1e6, v.Speedup)
	}
	fmt.Fprintf(w, "  parallel diagnostic (bootstrap K=%d):\n", r.K)
	for _, d := range r.Diagnostic {
		fmt.Fprintf(w, "  %-18s %14.2f %8.2fx\n",
			fmt.Sprintf("workers=%d", d.Workers), d.NsPerOp/1e6, d.Speedup)
	}
}

// WriteCSV implements result.
func (r *kernelBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "section,name,ns_per_op,speedup"); err != nil {
		return err
	}
	for _, v := range r.Variants {
		if _, err := fmt.Fprintf(w, "kernel,%s,%.0f,%.3f\n",
			v.Name, v.NsPerOp, v.Speedup); err != nil {
			return err
		}
	}
	for _, d := range r.Diagnostic {
		if _, err := fmt.Fprintf(w, "diagnostic,workers=%d,%.0f,%.3f\n",
			d.Workers, d.NsPerOp, d.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *kernelBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
