package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

// cacheRound is one workload round against one engine configuration:
// latency plus the round's incremental cache behaviour.
type cacheRound struct {
	Round int     `json:"round"`
	Ms    float64 `json:"ms"`
	// HitRate is the fraction of cache lookups (block + answer) this round
	// that hit — the ramp from cold (≈0) to hot (≈1).
	HitRate float64 `json:"hit_rate"`
	// ResidentBytes is the block cache's footprint after the round.
	ResidentBytes int64 `json:"resident_bytes"`
	Evictions     int64 `json:"evictions"`
}

// cacheRepeat is the hot-working-set phase: every cache layer on, budget
// comfortably above the working set, the same queries repeated.
type cacheRepeat struct {
	BudgetBytes int64        `json:"budget_bytes"`
	Rounds      []cacheRound `json:"rounds"`
	// Speedup is baseline ms-per-round over the mean warm (round ≥ 2)
	// ms-per-round — the CI gate wants ≥ 2x.
	Speedup float64 `json:"speedup"`
	// HitRate is the warm-round hit rate — the CI gate wants ≥ 0.9.
	HitRate float64 `json:"hit_rate"`
	// Divergence counts float64 result words that differ from the
	// cache-off answers (must be 0: caching is bit-neutral).
	Divergence int `json:"divergence"`
}

// cacheEvict is the thrash phase: block cache only, budget at 10% of the
// working set, so every round churns through eviction.
type cacheEvict struct {
	BudgetBytes int64        `json:"budget_bytes"`
	Rounds      []cacheRound `json:"rounds"`
	// MaxResidentBytes is the largest observed footprint; it must stay
	// within one block of the budget.
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// SlowdownVsBaseline is warm ms-per-round over the cache-off baseline:
	// near 1.0 means degradation is graceful, not a cliff.
	SlowdownVsBaseline float64 `json:"slowdown_vs_baseline"`
	Divergence         int    `json:"divergence"`
}

// cacheSweepPoint is one budget fraction in the degradation sweep.
type cacheSweepPoint struct {
	BudgetFraction float64 `json:"budget_fraction"`
	BudgetBytes    int64   `json:"budget_bytes"`
	MsPerRound     float64 `json:"ms_per_round"`
	HitRate        float64 `json:"hit_rate"`
	Evictions      int64   `json:"evictions"`
}

// cacheBenchResult is the cache fixture; it serializes to
// BENCH_cache.json.
type cacheBenchResult struct {
	Rows            int     `json:"rows"`
	SampleRows      int     `json:"sample_rows"`
	QueriesPerRound int     `json:"queries_per_round"`
	WorkingSetBytes int64   `json:"working_set_bytes"`
	BaselineMs      float64 `json:"baseline_ms_per_round"`

	Repeat cacheRepeat       `json:"repeat"`
	Evict  cacheEvict        `json:"evict"`
	Sweep  []cacheSweepPoint `json:"sweep"`
}

// JSONName routes this result's machine-readable output to its own file.
func (*cacheBenchResult) JSONName() string { return "BENCH_cache.json" }

// cacheQueries is the repeated hot workload: closed-form AVG/COUNT
// aggregates behind string predicates over two numeric columns, so every
// query decodes sample blocks (the samples are stored compressed) and
// repeats are pure cache traffic.
func cacheQueries() []string {
	names := []string{"NYC", "SF", "LA", "CHI", "LDN", "TYO"}
	var qs []string
	for _, c := range names {
		qs = append(qs,
			fmt.Sprintf("SELECT AVG(Time), COUNT(*) FROM T WHERE City = '%s'", c),
			fmt.Sprintf("SELECT AVG(bytes) FROM T WHERE City = '%s'", c))
	}
	return qs
}

// cacheEngine builds one engine over the shared base table with compressed
// samples and the given cache settings. Diagnostics are off for the same
// reason as the storage bench: a rejection's exact fallback would rescan
// the base table and measure a different experiment.
func cacheEngine(base *table.Table, sampleRows, seed int, cacheBytes int64, blockOnly bool) *core.Engine {
	eng := core.New(core.Config{
		Seed:               uint64(seed),
		Workers:            4,
		BootstrapK:         20,
		SkipDiagnostics:    true,
		SampleBacking:      table.BackingCompressed,
		CacheBytes:         cacheBytes,
		DisableAnswerCache: blockOnly,
		DisablePredMemo:    blockOnly,
	})
	if err := eng.RegisterTable("T", base); err != nil {
		panic("aqpbench: " + err.Error())
	}
	if err := eng.BuildSamples("T", sampleRows); err != nil {
		panic("aqpbench: " + err.Error())
	}
	return eng
}

// answerBits flattens an answer's statistical outputs to their exact
// float64 bit patterns: estimate, CI lo, CI hi per aggregate.
func answerBits(a *core.Answer) []uint64 {
	var bits []uint64
	for _, g := range a.Groups {
		for _, agg := range g.Aggs {
			bits = append(bits,
				math.Float64bits(agg.Estimate),
				math.Float64bits(agg.ErrorBar.Lo()),
				math.Float64bits(agg.ErrorBar.Hi()))
		}
	}
	return bits
}

// diverged counts bit-level mismatches between an answer and its
// cache-off reference.
func diverged(ref, got []uint64) int {
	n := 0
	if len(ref) != len(got) {
		return len(ref) + len(got)
	}
	for i := range ref {
		if ref[i] != got[i] {
			n++
		}
	}
	return n
}

// runCacheRounds drives the workload `rounds` times against one engine,
// recording per-round latency, the incremental hit-rate ramp, and
// divergence against the reference answers (nil skips the check).
func runCacheRounds(eng *core.Engine, qs []string, rounds int, refs [][]uint64) ([]cacheRound, int64, int) {
	var out []cacheRound
	var lastHits, lastLookups int64
	var maxResident int64
	divergence := 0
	for r := 1; r <= rounds; r++ {
		start := time.Now()
		for qi, q := range qs {
			ans, err := eng.Query(q)
			if err != nil {
				panic("aqpbench: " + err.Error())
			}
			if refs != nil {
				divergence += diverged(refs[qi], answerBits(ans))
			}
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		st := eng.CacheStatsSnapshot(0)
		hits := st.Block.Hits + st.Answer.Hits
		lookups := hits + st.Block.Misses + st.Answer.Misses
		rate := 0.0
		if d := lookups - lastLookups; d > 0 {
			rate = float64(hits-lastHits) / float64(d)
		}
		lastHits, lastLookups = hits, lookups
		if st.Block.Bytes > maxResident {
			maxResident = st.Block.Bytes
		}
		out = append(out, cacheRound{
			Round:         r,
			Ms:            ms,
			HitRate:       rate,
			ResidentBytes: st.Block.Bytes,
			Evictions:     st.Block.Evictions,
		})
	}
	return out, maxResident, divergence
}

// warmMs averages the ms-per-round of rounds 2..n (round 1 is the cold
// fill on cached engines and the warmup on the baseline).
func warmMs(rounds []cacheRound) float64 {
	if len(rounds) < 2 {
		return rounds[len(rounds)-1].Ms
	}
	sum := 0.0
	for _, r := range rounds[1:] {
		sum += r.Ms
	}
	return sum / float64(len(rounds)-1)
}

// cacheBench measures the decoded-block/answer cache on a repeated hot
// workload over compressed samples: repeat-query speedup and hit-rate
// ramp with the budget above the working set, bit-exactness and graceful
// degradation with the budget far below it, and a budget-fraction sweep
// in between.
func cacheBench(rows, sampleRows, rounds, seed int) *cacheBenchResult {
	base := storageTable(rows, seed)
	qs := cacheQueries()
	res := &cacheBenchResult{
		Rows:            rows,
		SampleRows:      sampleRows,
		QueriesPerRound: len(qs),
	}
	// The decoded working set is bounded by the sample's logical size; a
	// same-shape table of sampleRows rows measures it without touching
	// engine internals.
	res.WorkingSetBytes = storageTable(sampleRows, seed).SizeBytes()

	// Cache-off baseline: reference answers (bit-identity ground truth)
	// and the ms-per-round every other configuration is judged against.
	offEng := cacheEngine(base, sampleRows, seed, 0, false)
	refs := make([][]uint64, len(qs))
	for qi, q := range qs {
		ans, err := offEng.Query(q)
		if err != nil {
			panic("aqpbench: " + err.Error())
		}
		refs[qi] = answerBits(ans)
	}
	offRounds, _, _ := runCacheRounds(offEng, qs, rounds, refs)
	res.BaselineMs = warmMs(offRounds)
	offEng.Close()

	// Repeat phase: all layers, budget 4x the working set. Warm rounds are
	// answer-cache replays, so the speedup gate is decisive.
	res.Repeat.BudgetBytes = 4 * res.WorkingSetBytes
	repEng := cacheEngine(base, sampleRows, seed, res.Repeat.BudgetBytes, false)
	var maxRes int64
	res.Repeat.Rounds, maxRes, res.Repeat.Divergence =
		runCacheRounds(repEng, qs, rounds, refs)
	_ = maxRes
	warm := warmMs(res.Repeat.Rounds)
	if warm > 0 {
		res.Repeat.Speedup = res.BaselineMs / warm
	}
	hitSum := 0.0
	for _, r := range res.Repeat.Rounds[1:] {
		hitSum += r.HitRate
	}
	if len(res.Repeat.Rounds) > 1 {
		res.Repeat.HitRate = hitSum / float64(len(res.Repeat.Rounds)-1)
	}
	repEng.Close()

	// Evict phase: block cache only (no answer short-circuit), budget at
	// 10% of the working set — constant eviction churn, answers must stay
	// bit-identical and latency must not fall off a cliff.
	res.Evict.BudgetBytes = res.WorkingSetBytes / 10
	evEng := cacheEngine(base, sampleRows, seed, res.Evict.BudgetBytes, true)
	res.Evict.Rounds, res.Evict.MaxResidentBytes, res.Evict.Divergence =
		runCacheRounds(evEng, qs, rounds, refs)
	if res.BaselineMs > 0 {
		res.Evict.SlowdownVsBaseline = warmMs(res.Evict.Rounds) / res.BaselineMs
	}
	evEng.Close()

	// Budget sweep: block cache only, fraction of the working set rising
	// from starved to comfortable — hit rate should rise and latency fall
	// smoothly across the boundary.
	for _, f := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
		budget := int64(f * float64(res.WorkingSetBytes))
		eng := cacheEngine(base, sampleRows, seed, budget, true)
		rds, _, _ := runCacheRounds(eng, qs, rounds, refs)
		last := rds[len(rds)-1]
		res.Sweep = append(res.Sweep, cacheSweepPoint{
			BudgetFraction: f,
			BudgetBytes:    budget,
			MsPerRound:     warmMs(rds),
			HitRate:        last.HitRate,
			Evictions:      last.Evictions,
		})
		eng.Close()
	}
	return res
}

// Render implements result.
func (r *cacheBenchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "cache bench (rows=%d, sample=%d, %d queries/round, working set %.1f MiB)\n",
		r.Rows, r.SampleRows, r.QueriesPerRound, float64(r.WorkingSetBytes)/(1<<20))
	fmt.Fprintf(w, "  baseline (cache off): %.3f ms/round\n", r.BaselineMs)
	fmt.Fprintf(w, "repeat workload, budget %.1f MiB (all layers)\n",
		float64(r.Repeat.BudgetBytes)/(1<<20))
	fmt.Fprintf(w, "  %-7s %10s %9s %14s %10s\n", "round", "ms", "hit rate", "resident", "evicted")
	for _, rd := range r.Repeat.Rounds {
		fmt.Fprintf(w, "  %-7d %10.3f %9.3f %14d %10d\n",
			rd.Round, rd.Ms, rd.HitRate, rd.ResidentBytes, rd.Evictions)
	}
	fmt.Fprintf(w, "  speedup %.2fx, warm hit rate %.3f, divergence %d\n",
		r.Repeat.Speedup, r.Repeat.HitRate, r.Repeat.Divergence)
	fmt.Fprintf(w, "eviction churn, budget %.2f MiB (block cache only, 10%% of working set)\n",
		float64(r.Evict.BudgetBytes)/(1<<20))
	fmt.Fprintf(w, "  max resident %d bytes (budget %d), slowdown vs baseline %.2fx, divergence %d\n",
		r.Evict.MaxResidentBytes, r.Evict.BudgetBytes,
		r.Evict.SlowdownVsBaseline, r.Evict.Divergence)
	fmt.Fprintln(w, "budget sweep (block cache only)")
	fmt.Fprintf(w, "  %-9s %14s %12s %9s %10s\n", "fraction", "budget", "ms/round", "hit rate", "evicted")
	for _, p := range r.Sweep {
		fmt.Fprintf(w, "  %-9.2f %14d %12.3f %9.3f %10d\n",
			p.BudgetFraction, p.BudgetBytes, p.MsPerRound, p.HitRate, p.Evictions)
	}
}

// WriteCSV implements result.
func (r *cacheBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "phase,round,ms,hit_rate,resident_bytes,evictions"); err != nil {
		return err
	}
	for _, rd := range r.Repeat.Rounds {
		if _, err := fmt.Fprintf(w, "repeat,%d,%.3f,%.4f,%d,%d\n",
			rd.Round, rd.Ms, rd.HitRate, rd.ResidentBytes, rd.Evictions); err != nil {
			return err
		}
	}
	for _, rd := range r.Evict.Rounds {
		if _, err := fmt.Fprintf(w, "evict,%d,%.3f,%.4f,%d,%d\n",
			rd.Round, rd.Ms, rd.HitRate, rd.ResidentBytes, rd.Evictions); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "budget_fraction,budget_bytes,ms_per_round,hit_rate,evictions"); err != nil {
		return err
	}
	for _, p := range r.Sweep {
		if _, err := fmt.Fprintf(w, "%.2f,%d,%.3f,%.4f,%d\n",
			p.BudgetFraction, p.BudgetBytes, p.MsPerRound, p.HitRate, p.Evictions); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the machine-readable form consumed by CI and tooling.
func (r *cacheBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
